// Per-site blast radius of the injected faults inside the live serving
// stack (DESIGN.md §14): each site produces exactly what the design
// promises — a transient receipt, one degraded session, a delayed planner,
// a respawned ingest thread — never a crash, never a hole in the ledgers.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "fleet/net/ingest.hpp"
#include "fleet/net/wire.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/concurrent_server.hpp"
#include "fleet/runtime/fault.hpp"

namespace fleet::runtime {
namespace {

using test::pretrained_iprof;

core::ServerConfig server_config() {
  core::ServerConfig config;
  config.learning_rate = 0.1f;
  return config;
}

/// Parameter-index-varied gradient (the net suite's idiom) so fold-order
/// mistakes change the model instead of cancelling out.
GradientJob varied_job(const nn::TrainableModel& model, core::ModelId id,
                       std::size_t salt) {
  GradientJob job;
  job.model_id = id;
  job.task_version = 0;
  job.gradient.resize(model.parameter_count());
  for (std::size_t i = 0; i < job.gradient.size(); ++i) {
    job.gradient[i] =
        0.001f * static_cast<float>((i * 7 + salt * 13) % 23) - 0.01f;
  }
  job.label_dist = stats::LabelDistribution(model.n_classes());
  job.label_dist.add(static_cast<int>(salt % model.n_classes()), 2);
  job.mini_batch = 4;
  return job;
}

void expect_finite(nn::TrainableModel& model) {
  for (const float v : model.parameters_view()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(FaultSitesTest, QueueFullInjectionYieldsRetryableReceiptsThenRecovers) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(3);
  FaultInjector fault(11);
  FaultPlan plan;
  plan.site = FaultSite::kQueueFull;
  plan.every = 1;
  plan.max_fires = 3;
  fault.arm(plan);
  RuntimeConfig runtime;
  runtime.fault_injector = &fault;
  ConcurrentFleetServer server(*model, pretrained_iprof(), server_config(),
                               runtime);
  // The first three submits hit injected backpressure: rejected, retryable,
  // not shed — indistinguishable from a genuinely full queue, and the job
  // is left intact for the retry.
  GradientJob job = varied_job(*model, core::kDefaultModelId, 1);
  for (int i = 0; i < 3; ++i) {
    const core::GradientReceipt receipt = server.try_submit(job);
    EXPECT_FALSE(receipt.accepted);
    EXPECT_TRUE(receipt.retryable);
    EXPECT_FALSE(receipt.shed);
    ASSERT_FALSE(job.gradient.empty());
  }
  // Budget exhausted: the same retried job now lands.
  EXPECT_TRUE(server.try_submit(job).accepted);
  server.drain();
  EXPECT_EQ(fault.fires(FaultSite::kQueueFull), 3u);
  EXPECT_EQ(server.stats().processed, 1u);
  EXPECT_EQ(server.stats().shed_drops, 0u);
  server.stop();
}

TEST(FaultSitesTest, FoldTaskQuarantineDegradesOnlyTheFailingSession) {
  FaultInjector fault(5);
  FaultPlan plan;
  plan.site = FaultSite::kFoldTask;
  plan.every = 1;
  plan.max_fires = 1;  // exactly the first fold span task thrown
  fault.arm(plan);
  RuntimeConfig runtime;
  runtime.aggregation_shards = 4;
  runtime.start_paused = true;
  runtime.fault_injector = &fault;
  ConcurrentFleetServer host(runtime);
  auto model_a = nn::zoo::mlp(8, 4, 3);
  model_a->init(7);
  auto model_b = nn::zoo::mlp(8, 4, 3);
  model_b->init(19);
  const core::ModelId id_a =
      host.register_model(*model_a, pretrained_iprof(), server_config());
  const core::ModelId id_b =
      host.register_model(*model_b, pretrained_iprof(), server_config());

  // Stage A-only jobs first so the single budgeted fault can only land in
  // A's fold plan, then resume and drain that batch.
  for (std::size_t i = 0; i < 3; ++i) {
    GradientJob job = varied_job(*model_a, id_a, i);
    ASSERT_TRUE(host.try_submit(job).accepted);
  }
  host.resume();
  host.drain();

  // The host keeps serving after the quarantine: B trains cleanly, and A
  // itself still accepts and folds further work (degraded, not dead).
  for (std::size_t i = 0; i < 4; ++i) {
    GradientJob job_b = varied_job(*model_b, id_b, i);
    ASSERT_TRUE(host.try_submit(job_b).accepted);
  }
  GradientJob more_a = varied_job(*model_a, id_a, 9);
  ASSERT_TRUE(host.try_submit(more_a).accepted);
  host.drain();

  EXPECT_EQ(fault.fires(FaultSite::kFoldTask), 1u);
  const HealthSnapshot health = host.health();
  EXPECT_EQ(health.fold_quarantines, 1u);
  ASSERT_EQ(health.degraded_sessions.size(), 1u);
  EXPECT_EQ(health.degraded_sessions[0], id_a);
  EXPECT_TRUE(host.stats(id_a).degraded);
  EXPECT_FALSE(host.stats(id_b).degraded);
  EXPECT_EQ(host.stats(id_a).degraded_sessions, 1u);
  EXPECT_EQ(host.stats(id_a).processed, 4u);
  EXPECT_EQ(host.stats(id_b).processed, 4u);
  host.stop();
  // A's arena may hold a partial fold, but never a poisoned value.
  expect_finite(*model_a);
  expect_finite(*model_b);
}

TEST(FaultSitesTest, PlannerStallDelaysButNeverDropsABatch) {
  FaultInjector fault(13);
  FaultPlan plan;
  plan.site = FaultSite::kPlannerStall;
  plan.every = 1;
  plan.payload = 50;  // bounded spin-yields, not a clock
  fault.arm(plan);
  RuntimeConfig runtime;
  runtime.planner_threads = 2;
  runtime.fault_injector = &fault;
  ConcurrentFleetServer host(runtime);
  auto model_a = nn::zoo::mlp(8, 4, 3);
  model_a->init(7);
  auto model_b = nn::zoo::mlp(8, 4, 3);
  model_b->init(19);
  const core::ModelId id_a =
      host.register_model(*model_a, pretrained_iprof(), server_config());
  const core::ModelId id_b =
      host.register_model(*model_b, pretrained_iprof(), server_config());
  for (std::size_t i = 0; i < 6; ++i) {
    GradientJob job_a = varied_job(*model_a, id_a, i);
    ASSERT_TRUE(host.try_submit(job_a).accepted);
    GradientJob job_b = varied_job(*model_b, id_b, i);
    ASSERT_TRUE(host.try_submit(job_b).accepted);
  }
  host.drain();
  // Stalls fired, yet every gradient was processed and both planners made
  // progress — a stall is a delay, never a loss.
  EXPECT_GT(fault.fires(FaultSite::kPlannerStall), 0u);
  EXPECT_EQ(host.stats(id_a).processed, 6u);
  EXPECT_EQ(host.stats(id_b).processed, 6u);
  const HealthSnapshot health = host.health();
  ASSERT_EQ(health.planner_progress.size(), 2u);
  EXPECT_GT(health.planner_progress[0], 0u);
  EXPECT_GT(health.planner_progress[1], 0u);
  host.stop();
}

TEST(FaultSitesTest, InjectorDeathIsHealedByACountedRespawn) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(3);
  FaultInjector fault(17);
  FaultPlan plan;
  plan.site = FaultSite::kInjectorDeath;
  plan.every = 2;
  plan.max_fires = 3;
  fault.arm(plan);
  RuntimeConfig runtime;
  ConcurrentFleetServer server(*model, pretrained_iprof(), server_config(),
                               runtime);
  net::LoopbackIngest::Config cfg;
  cfg.injector_threads = 2;
  cfg.fault = &fault;
  net::LoopbackIngest ingest(server, cfg);
  std::vector<std::uint8_t> frame;
  constexpr std::size_t kFrames = 30;
  for (std::size_t i = 0; i < kFrames; ++i) {
    net::encode_job(varied_job(*model, core::kDefaultModelId, i),
                    net::PayloadKind::kInt8, frame);
    while (!ingest.try_send(frame)) std::this_thread::yield();
  }
  ingest.drain();
  server.drain();
  ingest.close();
  const net::IngestStats stats = ingest.stats();
  // Every death respawned, every frame delivered: a killed injector dies
  // before popping, so no frame is ever lost to a death.
  EXPECT_EQ(fault.fires(FaultSite::kInjectorDeath), 3u);
  EXPECT_EQ(stats.injector_restarts, 3u);
  EXPECT_EQ(stats.frames_sent, kFrames);
  EXPECT_EQ(stats.frames_submitted, kFrames);
  EXPECT_EQ(stats.wire_rejects, 0u);
  EXPECT_EQ(stats.server_rejects, 0u);
  EXPECT_EQ(stats.shed_drops, 0u);
  EXPECT_EQ(server.stats().processed, kFrames);
  server.stop();
}

TEST(FaultSitesTest, WireCorruptionSweepKeepsTheLedgerExactAcross50Seeds) {
  constexpr std::size_t kFrames = 20;
  std::uint64_t total_corrupted = 0;
  std::uint64_t total_wire_rejects = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    auto model = nn::zoo::mlp(8, 4, 3);
    model->init(seed + 1);
    FaultInjector fault(seed);
    FaultPlan plan;
    plan.site = FaultSite::kWireCorrupt;
    plan.probability = 0.3;
    fault.arm(plan);
    ConcurrentFleetServer server(*model, pretrained_iprof(), server_config());
    net::LoopbackIngest::Config cfg;
    cfg.injector_threads = 1;
    cfg.fault = &fault;
    net::LoopbackIngest ingest(server, cfg);
    std::vector<std::uint8_t> frame;
    for (std::size_t i = 0; i < kFrames; ++i) {
      net::encode_job(varied_job(*model, core::kDefaultModelId, i),
                      net::PayloadKind::kInt8, frame);
      while (!ingest.try_send(frame)) std::this_thread::yield();
    }
    ingest.drain();
    server.drain();
    ingest.close();
    const net::IngestStats stats = ingest.stats();
    // The four-bucket identity is exact for every seed: a corrupted frame
    // either decode-rejects or decodes to something the host folds —
    // either way it lands in exactly one bucket.
    EXPECT_EQ(stats.frames_sent, kFrames) << "seed " << seed;
    EXPECT_EQ(stats.frames_submitted + stats.wire_rejects +
                  stats.server_rejects + stats.shed_drops,
              stats.frames_sent)
        << "seed " << seed;
    EXPECT_EQ(stats.frames_corrupted, fault.fires(FaultSite::kWireCorrupt));
    EXPECT_LE(stats.wire_rejects + stats.server_rejects,
              stats.frames_corrupted);
    EXPECT_GE(stats.frames_submitted, kFrames - stats.frames_corrupted);
    server.stop();
    expect_finite(*model);
    total_corrupted += stats.frames_corrupted;
    total_wire_rejects += stats.wire_rejects;
  }
  // The sweep actually exercised both corruption outcomes somewhere.
  EXPECT_GT(total_corrupted, 0u);
  EXPECT_GT(total_wire_rejects, 0u);
}

TEST(FaultSitesTest, RetryBudgetExhaustionTurnsBackpressureIntoGiveUps) {
  // A wedged host (paused, tiny queue) used to spin submit_frame forever;
  // the attempt budget now bounds it: the frame is given up and counted a
  // server reject, and ingest.drain() returns instead of hanging.
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(3);
  RuntimeConfig runtime;
  runtime.queue_capacity = 2;
  runtime.queue_shards = 1;
  runtime.start_paused = true;
  ConcurrentFleetServer server(*model, pretrained_iprof(), server_config(),
                               runtime);
  net::LoopbackIngest::Config cfg;
  cfg.injector_threads = 1;
  cfg.max_submit_attempts = 4;
  net::LoopbackIngest ingest(server, cfg);
  std::vector<std::uint8_t> frame;
  for (std::size_t i = 0; i < 5; ++i) {
    net::encode_job(varied_job(*model, core::kDefaultModelId, i),
                    net::PayloadKind::kInt8, frame);
    while (!ingest.try_send(frame)) std::this_thread::yield();
  }
  ingest.drain();  // terminates BECAUSE the budget is finite
  const net::IngestStats stats = ingest.stats();
  EXPECT_EQ(stats.frames_sent, 5u);
  EXPECT_EQ(stats.frames_submitted, 2u);
  EXPECT_EQ(stats.server_rejects, 3u);
  EXPECT_GT(stats.backpressure_retries, 0u);
  EXPECT_EQ(stats.frames_submitted + stats.wire_rejects +
                stats.server_rejects + stats.shed_drops,
            stats.frames_sent);
  server.resume();
  server.drain();
  EXPECT_EQ(server.stats().processed, 2u);
  ingest.close();
  server.stop();
}

}  // namespace
}  // namespace fleet::runtime
