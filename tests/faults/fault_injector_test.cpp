// Deterministic fault-injection engine (DESIGN.md §14): every firing
// decision is a pure function of (seed, site, trigger index) — no clocks,
// no global RNG — so a fault schedule replays identically run to run. The
// 64-seed sweep here is the determinism contract the chaos matrix rests on.
#include "fleet/runtime/fault.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>
#include <vector>

namespace fleet::runtime {
namespace {

constexpr FaultSite kAllSites[] = {
    FaultSite::kWireCorrupt, FaultSite::kInjectorDeath, FaultSite::kQueueFull,
    FaultSite::kFoldTask, FaultSite::kPlannerStall,
};

TEST(FaultInjectorTest, SameSeedReplaysTheExactFireSequenceAcross64Seeds) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    FaultInjector a(seed);
    FaultInjector b(seed);
    for (const FaultSite site : kAllSites) {
      FaultPlan plan;
      plan.site = site;
      plan.probability = 0.2;
      a.arm(plan);
      b.arm(plan);
    }
    for (std::size_t trigger = 0; trigger < 200; ++trigger) {
      for (const FaultSite site : kAllSites) {
        ASSERT_EQ(a.should_fire(site), b.should_fire(site))
            << "seed " << seed << " site " << fault_site_name(site)
            << " trigger " << trigger;
      }
    }
    for (const FaultSite site : kAllSites) {
      EXPECT_EQ(a.fires(site), b.fires(site));
      EXPECT_EQ(a.triggers(site), 200u);
    }
  }
}

TEST(FaultInjectorTest, ModularScheduleFiresExactlyOnItsGrid) {
  FaultInjector injector(7);
  FaultPlan plan;
  plan.site = FaultSite::kQueueFull;
  plan.every = 5;
  plan.after = 3;
  injector.arm(plan);
  for (std::uint64_t trigger = 0; trigger < 40; ++trigger) {
    const bool expected = trigger >= 3 && (trigger - 3) % 5 == 0;
    EXPECT_EQ(injector.should_fire(FaultSite::kQueueFull), expected)
        << "trigger " << trigger;
  }
  EXPECT_EQ(injector.fires(FaultSite::kQueueFull), 8u);  // 3, 8, ..., 38
  EXPECT_EQ(injector.triggers(FaultSite::kQueueFull), 40u);
}

TEST(FaultInjectorTest, MaxFiresBudgetStopsFurtherFires) {
  FaultInjector injector(7);
  FaultPlan plan;
  plan.site = FaultSite::kFoldTask;
  plan.every = 1;
  plan.max_fires = 3;
  injector.arm(plan);
  std::size_t fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.should_fire(FaultSite::kFoldTask)) ++fired;
  }
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(injector.fires(FaultSite::kFoldTask), 3u);
  EXPECT_EQ(injector.triggers(FaultSite::kFoldTask), 10u);
}

TEST(FaultInjectorTest, ProbabilityModeFiresAtRoughlyTheConfiguredRate) {
  FaultInjector injector(42);
  FaultPlan plan;
  plan.site = FaultSite::kWireCorrupt;
  plan.probability = 0.1;
  injector.arm(plan);
  std::size_t fired = 0;
  constexpr std::size_t kTriggers = 20000;
  for (std::size_t i = 0; i < kTriggers; ++i) {
    if (injector.should_fire(FaultSite::kWireCorrupt)) ++fired;
  }
  // 10% within a generous band; the hash is fixed, so this never flakes.
  EXPECT_GT(fired, kTriggers / 20);
  EXPECT_LT(fired, kTriggers / 5);
}

TEST(FaultInjectorTest, UnarmedSitesCountTriggersButNeverFire) {
  FaultInjector injector(3);
  for (int i = 0; i < 50; ++i) {
    for (const FaultSite site : kAllSites) {
      EXPECT_FALSE(injector.should_fire(site));
    }
  }
  for (const FaultSite site : kAllSites) {
    EXPECT_EQ(injector.triggers(site), 50u);
    EXPECT_EQ(injector.fires(site), 0u);
    EXPECT_EQ(injector.payload(site), 0u);
  }
}

TEST(FaultInjectorTest, ArmingLateReplaysTheSameTriggerIndices) {
  // Triggers advance even while unarmed, so a plan armed mid-stream sees
  // the same trigger indices an always-armed injector would — the property
  // that lets tests stage warm-up traffic before arming.
  FaultInjector always(5);
  FaultInjector late(5);
  FaultPlan plan;
  plan.site = FaultSite::kQueueFull;
  plan.probability = 0.25;
  always.arm(plan);
  std::vector<bool> head;
  for (int i = 0; i < 20; ++i) {
    head.push_back(always.should_fire(FaultSite::kQueueFull));
    late.should_fire(FaultSite::kQueueFull);  // unarmed warm-up
  }
  late.arm(plan);
  for (int i = 0; i < 80; ++i) {
    EXPECT_EQ(always.should_fire(FaultSite::kQueueFull),
              late.should_fire(FaultSite::kQueueFull))
        << "post-arm trigger " << i;
  }
}

TEST(FaultInjectorTest, SitesDecideIndependentlyUnderOneSeed) {
  // Same seed, same trigger index, different site => independent decision
  // streams (the site key splits the seed). Identical streams would make
  // the two fire vectors equal — assert they diverge.
  FaultInjector injector(9);
  for (const FaultSite site :
       {FaultSite::kWireCorrupt, FaultSite::kFoldTask}) {
    FaultPlan plan;
    plan.site = site;
    plan.probability = 0.3;
    injector.arm(plan);
  }
  std::vector<bool> a;
  std::vector<bool> b;
  for (int i = 0; i < 256; ++i) {
    a.push_back(injector.should_fire(FaultSite::kWireCorrupt));
    b.push_back(injector.should_fire(FaultSite::kFoldTask));
  }
  EXPECT_NE(a, b);
}

TEST(FaultInjectorTest, DrawIsPureSeedKeyedAndSiteKeyed) {
  FaultInjector a(5);
  FaultInjector b(5);
  FaultInjector c(6);
  for (std::uint64_t salt = 0; salt < 32; ++salt) {
    EXPECT_EQ(a.draw(FaultSite::kWireCorrupt, salt),
              b.draw(FaultSite::kWireCorrupt, salt));
  }
  EXPECT_NE(a.draw(FaultSite::kWireCorrupt, 0),
            c.draw(FaultSite::kWireCorrupt, 0));
  EXPECT_NE(a.draw(FaultSite::kWireCorrupt, 0),
            a.draw(FaultSite::kFoldTask, 0));
}

TEST(FaultInjectorTest, SiteNamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (const FaultSite site : kAllSites) {
    names.insert(fault_site_name(site));
  }
  EXPECT_EQ(names.size(), std::size(kAllSites));
  EXPECT_EQ(std::string(fault_site_name(FaultSite::kWireCorrupt)),
            "wire_corrupt");
  EXPECT_EQ(std::string(fault_site_name(FaultSite::kInjectorDeath)),
            "injector_death");
}

TEST(FaultInjectorTest, PayloadReflectsTheArmedPlan) {
  FaultInjector injector(1);
  FaultPlan plan;
  plan.site = FaultSite::kPlannerStall;
  plan.every = 1;
  plan.payload = 1234;
  injector.arm(plan);
  EXPECT_EQ(injector.payload(FaultSite::kPlannerStall), 1234u);
  EXPECT_EQ(injector.payload(FaultSite::kQueueFull), 0u);
  EXPECT_EQ(injector.seed(), 1u);
}

}  // namespace
}  // namespace fleet::runtime
