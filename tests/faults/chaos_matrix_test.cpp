// Capstone chaos matrix (DESIGN.md §14): a two-tenant loopback serving
// stack driven with EVERY fault site armed at once, across seeds. Whatever
// the seeded schedule does, the invariants must hold: the ingest ledger is
// exact to the frame, the host ledger is exact to the gradient, every
// injector death is healed by a counted respawn, no drain ever deadlocks,
// and the surviving models stay finite. And with the injector constructed
// but never armed, the whole stack is bitwise identical to one built
// without it.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "fleet/net/ingest.hpp"
#include "fleet/net/wire.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/concurrent_server.hpp"
#include "fleet/runtime/fault.hpp"

namespace fleet::runtime {
namespace {

using test::bitwise_equal;
using test::pretrained_iprof;

core::ServerConfig server_config() {
  core::ServerConfig config;
  config.learning_rate = 0.1f;
  return config;
}

GradientJob varied_job(const nn::TrainableModel& model, core::ModelId id,
                       std::size_t salt) {
  GradientJob job;
  job.model_id = id;
  job.task_version = 0;
  job.gradient.resize(model.parameter_count());
  for (std::size_t i = 0; i < job.gradient.size(); ++i) {
    job.gradient[i] =
        0.001f * static_cast<float>((i * 7 + salt * 13) % 23) - 0.01f;
  }
  job.label_dist = stats::LabelDistribution(model.n_classes());
  job.label_dist.add(static_cast<int>(salt % model.n_classes()), 2);
  job.mini_batch = 4;
  return job;
}

void expect_finite(nn::TrainableModel& model) {
  for (const float v : model.parameters_view()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

/// Arm every site with a seed-scheduled plan. Budgeted where an unbounded
/// plan could wedge the stack (a death per poll would outpace the healer,
/// an injected queue-full on every retry would exhaust any budget).
void arm_all_sites(FaultInjector& fault) {
  FaultPlan corrupt;
  corrupt.site = FaultSite::kWireCorrupt;
  corrupt.probability = 0.08;
  fault.arm(corrupt);
  FaultPlan death;
  death.site = FaultSite::kInjectorDeath;
  death.every = 11;
  death.max_fires = 3;
  fault.arm(death);
  FaultPlan full;
  full.site = FaultSite::kQueueFull;
  full.probability = 0.05;
  full.max_fires = 6;
  fault.arm(full);
  FaultPlan fold;
  fold.site = FaultSite::kFoldTask;
  fold.every = 7;
  fold.max_fires = 2;
  fault.arm(fold);
  FaultPlan stall;
  stall.site = FaultSite::kPlannerStall;
  stall.every = 13;
  stall.payload = 100;
  fault.arm(stall);
}

TEST(ChaosMatrixTest, AllSitesArmedEveryLedgerStaysExactAcrossSeeds) {
  constexpr std::size_t kFramesPerTenant = 60;
  for (const std::uint64_t seed : {1u, 7u, 13u, 29u, 41u, 57u}) {
    FaultInjector fault(seed);
    arm_all_sites(fault);
    RuntimeConfig runtime;
    runtime.planner_threads = 2;
    runtime.aggregation_shards = 2;
    runtime.queue_capacity = 64;
    runtime.queue_shards = 2;
    runtime.overload_policy = OverloadPolicy::kShedStalest;
    runtime.shed_watermark = 48;
    runtime.fault_injector = &fault;
    ConcurrentFleetServer host(runtime);
    auto model_a = nn::zoo::mlp(8, 4, 3);
    model_a->init(seed + 1);
    auto model_b = nn::zoo::mlp(8, 4, 3);
    model_b->init(seed + 2);
    const core::ModelId id_a =
        host.register_model(*model_a, pretrained_iprof(), server_config());
    const core::ModelId id_b =
        host.register_model(*model_b, pretrained_iprof(), server_config());

    net::LoopbackIngest::Config cfg;
    cfg.injector_threads = 2;
    cfg.max_submit_attempts = 64;
    cfg.fault = &fault;
    net::LoopbackIngest ingest(host, cfg);
    std::vector<std::uint8_t> frame;
    for (std::size_t i = 0; i < kFramesPerTenant; ++i) {
      net::encode_job(varied_job(*model_a, id_a, i), net::PayloadKind::kInt8,
                      frame);
      while (!ingest.try_send(frame)) std::this_thread::yield();
      net::encode_job(varied_job(*model_b, id_b, i),
                      net::PayloadKind::kFloat32, frame);
      while (!ingest.try_send(frame)) std::this_thread::yield();
    }
    // No deadlock under chaos: both drains and the teardown must return.
    ingest.drain();
    host.drain();
    ingest.close();

    const net::IngestStats in = ingest.stats();
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    // Ingest ledger: with senders quiesced, every frame ever sent sits in
    // exactly one bucket — the extended four-way identity.
    EXPECT_EQ(in.frames_sent, 2 * kFramesPerTenant);
    EXPECT_EQ(in.frames_submitted + in.wire_rejects + in.server_rejects +
                  in.shed_drops,
              in.frames_sent);
    // Self-healing: every death was followed by a counted respawn, and no
    // frame was lost to one (deaths happen before the pop).
    EXPECT_EQ(in.injector_restarts, fault.fires(FaultSite::kInjectorDeath));
    EXPECT_EQ(in.frames_corrupted, fault.fires(FaultSite::kWireCorrupt));

    // Host ledger: every admitted gradient was folded, screened invalid
    // (corrupted-but-decodable frames land there), or evicted by the shed
    // policy. Evictions = host sheds minus ingest-side refusals.
    const RuntimeStats host_stats = host.host_stats();
    ASSERT_GE(host_stats.shed_drops, in.shed_drops);
    const std::size_t evictions = host_stats.shed_drops - in.shed_drops;
    const RuntimeStats stats_a = host.stats(id_a);
    const RuntimeStats stats_b = host.stats(id_b);
    EXPECT_EQ(stats_a.submitted + stats_b.submitted, in.frames_submitted);
    EXPECT_EQ(stats_a.processed + stats_b.processed + stats_a.invalid_jobs +
                  stats_b.invalid_jobs + evictions,
              stats_a.submitted + stats_b.submitted);
    EXPECT_EQ(host_stats.retired_drops, 0u);

    // Degradation accounting: quarantines match the injector's own count,
    // and a quarantine implies a degraded session (never the reverse).
    const HealthSnapshot health = host.health();
    EXPECT_EQ(health.fold_quarantines, fault.fires(FaultSite::kFoldTask));
    if (health.fold_quarantines > 0) {
      EXPECT_GE(health.degraded_sessions.size(), 1u);
    } else {
      EXPECT_TRUE(health.degraded_sessions.empty());
    }
    EXPECT_LE(health.degraded_sessions.size(), 2u);
    // Liveness: both planners kept progressing through stalls.
    ASSERT_EQ(health.planner_progress.size(), 2u);
    EXPECT_GT(health.planner_progress[0], 0u);
    EXPECT_GT(health.planner_progress[1], 0u);

    host.stop();
    // Whatever was folded — including dequeued corrupted-but-decodable
    // payloads the wire guards screened finite — left finite parameters.
    expect_finite(*model_a);
    expect_finite(*model_b);
  }
}

TEST(ChaosMatrixTest, UnarmedInjectorIsBitwiseIdenticalToNoInjector) {
  constexpr std::size_t kJobsA = 12;
  constexpr std::size_t kJobsB = 9;
  struct Outcome {
    std::vector<float> params_a;
    std::vector<float> params_b;
    net::IngestStats ingest;
  };
  const auto run = [&](FaultInjector* fault) {
    RuntimeConfig runtime;
    runtime.start_paused = true;
    runtime.planner_threads = 2;
    runtime.aggregation_shards = 2;
    if (fault != nullptr) {
      // The faults-off configuration the acceptance gate names: injector
      // present but unarmed, and the baseline overload policy.
      runtime.fault_injector = fault;
      runtime.overload_policy = OverloadPolicy::kRejectNewest;
    }
    auto model_a = nn::zoo::mlp(8, 4, 3);
    model_a->init(7);
    auto model_b = nn::zoo::mlp(8, 4, 3);
    model_b->init(19);
    ConcurrentFleetServer host(runtime);
    const core::ModelId id_a =
        host.register_model(*model_a, pretrained_iprof(), server_config());
    const core::ModelId id_b =
        host.register_model(*model_b, pretrained_iprof(), server_config());
    net::LoopbackIngest::Config cfg;
    cfg.injector_threads = 1;  // submission order == send order
    cfg.fault = fault;
    net::LoopbackIngest ingest(host, cfg);
    std::vector<std::uint8_t> frame;
    for (std::size_t i = 0; i < std::max(kJobsA, kJobsB); ++i) {
      if (i < kJobsA) {
        net::encode_job(varied_job(*model_a, id_a, i),
                        net::PayloadKind::kInt8, frame);
        while (!ingest.try_send(frame)) std::this_thread::yield();
      }
      if (i < kJobsB) {
        net::encode_job(varied_job(*model_b, id_b, i),
                        net::PayloadKind::kFloat32, frame);
        while (!ingest.try_send(frame)) std::this_thread::yield();
      }
    }
    ingest.drain();
    host.resume();
    host.drain();
    ingest.close();
    Outcome out;
    out.ingest = ingest.stats();
    host.stop();
    const auto view_a = model_a->parameters_view();
    out.params_a.assign(view_a.begin(), view_a.end());
    const auto view_b = model_b->parameters_view();
    out.params_b.assign(view_b.begin(), view_b.end());
    return out;
  };

  const Outcome plain = run(nullptr);
  FaultInjector unarmed(123);
  const Outcome faulted = run(&unarmed);
  EXPECT_TRUE(bitwise_equal(plain.params_a, faulted.params_a));
  EXPECT_TRUE(bitwise_equal(plain.params_b, faulted.params_b));
  EXPECT_EQ(plain.ingest.frames_submitted, faulted.ingest.frames_submitted);
  EXPECT_EQ(faulted.ingest.frames_submitted, kJobsA + kJobsB);
  EXPECT_EQ(faulted.ingest.shed_drops, 0u);
  EXPECT_EQ(faulted.ingest.injector_restarts, 0u);
  EXPECT_EQ(faulted.ingest.frames_corrupted, 0u);
  // The unarmed injector's sites were polled (triggers advanced) but none
  // ever fired — the null-behavior contract.
  EXPECT_GT(unarmed.triggers(FaultSite::kWireCorrupt), 0u);
  EXPECT_GT(unarmed.triggers(FaultSite::kQueueFull), 0u);
  for (const FaultSite site :
       {FaultSite::kWireCorrupt, FaultSite::kInjectorDeath,
        FaultSite::kQueueFull, FaultSite::kFoldTask,
        FaultSite::kPlannerStall}) {
    EXPECT_EQ(unarmed.fires(site), 0u);
  }
}

}  // namespace
}  // namespace fleet::runtime
