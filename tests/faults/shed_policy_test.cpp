// Staleness-aware load shedding (DESIGN.md §14): above the watermark a
// shed policy evicts the gradients AdaSGD's dampening would down-weight
// hardest anyway, instead of bouncing fresh work. Evictions and refusals
// are counted and traced, refusals never draw a ticket, and the default
// kRejectNewest policy stays bitwise identical to the pre-policy queue.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/concurrent_server.hpp"
#include "fleet/runtime/gradient_queue.hpp"

namespace fleet::runtime {
namespace {

using test::bitwise_equal;
using test::pretrained_iprof;

core::ServerConfig server_config() {
  core::ServerConfig config;
  config.learning_rate = 0.1f;
  return config;
}

GradientJob varied_job(const nn::TrainableModel& model, core::ModelId id,
                       std::size_t salt) {
  GradientJob job;
  job.model_id = id;
  job.task_version = 0;
  job.gradient.resize(model.parameter_count());
  for (std::size_t i = 0; i < job.gradient.size(); ++i) {
    job.gradient[i] =
        0.001f * static_cast<float>((i * 7 + salt * 13) % 23) - 0.01f;
  }
  job.label_dist = stats::LabelDistribution(model.n_classes());
  job.label_dist.add(static_cast<int>(salt % model.n_classes()), 2);
  job.mini_batch = 4;
  return job;
}

std::vector<float> params_of(nn::TrainableModel& model) {
  const auto view = model.parameters_view();
  return std::vector<float>(view.begin(), view.end());
}

/// A queue-level job carrying only what the shed scan reads: its cost and
/// a tag (in gradient[0]) identifying it.
GradientJob tagged(double shed_cost, float tag) {
  GradientJob job;
  job.model_id = core::kDefaultModelId;
  job.shed_cost = shed_cost;
  job.gradient = {tag};
  return job;
}

TEST(ShedPolicyQueueTest, EvictsTheCheapestQueuedJobAndKeepsTicketOrder) {
  GradientQueue queue(8, 1, nullptr, 1, OverloadPolicy::kShedStalest, 3);
  GradientJob evicted;
  for (int i = 0; i < 3; ++i) {
    // Costs -5, -4, -3: all below the watermark, accepted untouched.
    GradientJob job = tagged(-5.0 + i, static_cast<float>(i));
    ASSERT_EQ(queue.push(job, &evicted), GradientQueue::PushOutcome::kAccepted);
  }
  // Depth 4 > watermark 3: the cheapest queued job (-5, tag 0) loses to
  // the incoming cost-0 job.
  GradientJob fresh = tagged(0.0, 10.0f);
  ASSERT_EQ(queue.push(fresh, &evicted),
            GradientQueue::PushOutcome::kAcceptedEvicted);
  EXPECT_DOUBLE_EQ(evicted.shed_cost, -5.0);
  EXPECT_EQ(evicted.gradient[0], 0.0f);
  // Again: now -4 (tag 1) is cheapest.
  GradientJob fresher = tagged(1.0, 11.0f);
  ASSERT_EQ(queue.push(fresher, &evicted),
            GradientQueue::PushOutcome::kAcceptedEvicted);
  EXPECT_EQ(evicted.gradient[0], 1.0f);
  // An incoming job cheaper than everything queued is refused — no ticket,
  // no eviction (kShedIncoming), queue untouched.
  GradientJob stale = tagged(-9.0, 12.0f);
  EXPECT_EQ(queue.push(stale, &evicted),
            GradientQueue::PushOutcome::kShedIncoming);
  // Equal cost also refuses the incoming side (the queued job is not
  // strictly cheaper, so the swap would be pure churn).
  GradientJob tie = tagged(-3.0, 13.0f);
  EXPECT_EQ(queue.push(tie, &evicted),
            GradientQueue::PushOutcome::kShedIncoming);
  // Mid-deque erases preserved ticket-sorted order: drain yields the
  // survivors in strictly increasing ticket order.
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out, 0, 0), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].gradient[0], 2.0f);    // cost -3, ticket 2
  EXPECT_EQ(out[1].gradient[0], 10.0f);   // ticket 3
  EXPECT_EQ(out[2].gradient[0], 11.0f);   // ticket 4
  EXPECT_LT(out[0].ticket, out[1].ticket);
  EXPECT_LT(out[1].ticket, out[2].ticket);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(ShedPolicyQueueTest, ShedPolicyAtCapacityEvictsInsteadOfRejecting) {
  // Watermark 0 clamps to capacity: below capacity the shed path never
  // runs, at capacity it weighs instead of bouncing.
  GradientQueue queue(2, 1, nullptr, 1, OverloadPolicy::kShedStalest, 0);
  GradientJob evicted;
  GradientJob a = tagged(-2.0, 0.0f);
  ASSERT_EQ(queue.push(a, &evicted), GradientQueue::PushOutcome::kAccepted);
  GradientJob b = tagged(-1.0, 1.0f);
  ASSERT_EQ(queue.push(b, &evicted), GradientQueue::PushOutcome::kAccepted);
  GradientJob c = tagged(0.0, 2.0f);
  EXPECT_EQ(queue.push(c, &evicted),
            GradientQueue::PushOutcome::kAcceptedEvicted);
  EXPECT_EQ(evicted.gradient[0], 0.0f);
  EXPECT_EQ(queue.depth(), 2u);  // a swap never grows the queue
  // The same overflow under kRejectNewest is a plain full-queue reject.
  GradientQueue baseline(2, 1, nullptr, 1, OverloadPolicy::kRejectNewest, 0);
  GradientJob x = tagged(0.0, 0.0f);
  ASSERT_EQ(baseline.push(x, nullptr), GradientQueue::PushOutcome::kAccepted);
  GradientJob y = tagged(0.0, 1.0f);
  ASSERT_EQ(baseline.push(y, nullptr), GradientQueue::PushOutcome::kAccepted);
  GradientJob z = tagged(0.0, 2.0f);
  EXPECT_EQ(baseline.push(z, nullptr),
            GradientQueue::PushOutcome::kRejectedFull);
}

TEST(ShedPolicyQueueTest, ClosedQueueRefusesEitherWay) {
  GradientQueue queue(4, 1, nullptr, 1, OverloadPolicy::kShedStalest, 1);
  queue.close();
  GradientJob job = tagged(0.0, 0.0f);
  EXPECT_EQ(queue.push(job, nullptr),
            GradientQueue::PushOutcome::kRejectedClosed);
}

TEST(ShedPolicyQueueTest, PolicyNamesAreStable) {
  EXPECT_STREQ(overload_policy_name(OverloadPolicy::kRejectNewest),
               "reject_newest");
  EXPECT_STREQ(overload_policy_name(OverloadPolicy::kShedStalest),
               "shed_stalest");
  EXPECT_STREQ(overload_policy_name(OverloadPolicy::kShedLowestWeight),
               "shed_lowest_weight");
}

/// Deterministically park the host's single planner so staged pushes stay
/// queued: pause(), feed one sacrificial job, and check whether the
/// planner picked it up into a held batch (pause is batch-granular). If
/// the planner instead parked at the pause gate before popping — the other
/// side of the documented race — resume, let it settle, and try again.
/// Returns how many sacrificial jobs were fed; after this returns, the
/// queue is empty, the host is paused and the planner cannot pop anything
/// until resume().
std::size_t park_planner(ConcurrentFleetServer& server,
                         const nn::TrainableModel& model) {
  std::size_t fed = 0;
  while (true) {
    server.pause();
    GradientJob sacrificial =
        varied_job(model, core::kDefaultModelId, 90 + fed);
    sacrificial.task_version = server.version();
    EXPECT_TRUE(server.try_submit(sacrificial).accepted);
    ++fed;
    bool held = false;
    for (std::size_t i = 0; i < 50000; ++i) {
      if (server.host_stats().queue_depth == 0) {
        held = true;
        break;
      }
      std::this_thread::yield();
    }
    if (held) return fed;
    server.resume();
    server.drain();
  }
}

TEST(ShedPolicyServerTest, ShedStalestEvictsTheStalestQueuedGradient) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(5);
  RuntimeConfig runtime;
  runtime.queue_capacity = 8;
  runtime.queue_shards = 1;
  runtime.overload_policy = OverloadPolicy::kShedStalest;
  runtime.shed_watermark = 1;
  ConcurrentFleetServer server(*model, pretrained_iprof(), server_config(),
                               runtime);
  // Advance the clock so staleness can differ between queued jobs. Drain
  // between submits: with the watermark at 1, two warm-ups racing the
  // planner could momentarily stack to depth 2 and shed each other.
  for (std::size_t i = 0; i < 3; ++i) {
    GradientJob job = varied_job(*model, core::kDefaultModelId, i);
    ASSERT_TRUE(server.try_submit(job).accepted);
    server.drain();
  }
  const std::size_t fed = park_planner(server, *model);
  const std::size_t now = server.version();
  ASSERT_GE(now, 3u);

  // Stage: a stale job (task_version 0 => shed cost -now) sits alone below
  // the watermark...
  GradientJob stale = varied_job(*model, core::kDefaultModelId, 20);
  ASSERT_TRUE(server.try_submit(stale).accepted);
  EXPECT_EQ(server.host_stats().shed_drops, 0u);
  // ... until a fresh job (cost 0) crosses it: the stale one is evicted in
  // its favor, counted, and the fresh submit still succeeds.
  GradientJob fresh = varied_job(*model, core::kDefaultModelId, 21);
  fresh.task_version = now;
  ASSERT_TRUE(server.try_submit(fresh).accepted);
  EXPECT_EQ(server.host_stats().shed_drops, 1u);
  // A second stale job is now the cheapest thing in sight: refused as
  // shed, non-retryably, with no ticket drawn.
  GradientJob stale2 = varied_job(*model, core::kDefaultModelId, 22);
  const core::GradientReceipt refusal = server.try_submit(stale2);
  EXPECT_FALSE(refusal.accepted);
  EXPECT_TRUE(refusal.shed);
  EXPECT_FALSE(refusal.retryable);
  EXPECT_EQ(server.host_stats().shed_drops, 2u);

  server.resume();
  server.drain();
  // Folded: 3 warm-ups + the sacrificial batch + the fresh survivor. The
  // evicted and refused stale jobs never reached the aggregator.
  EXPECT_EQ(server.stats().processed, 3u + fed + 1u);
  EXPECT_EQ(server.stats().shed_drops, 2u);
  server.stop();
}

TEST(ShedPolicyServerTest, ShedLowestWeightEvictsTheLowestDampenedWeight) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(5);
  core::ServerConfig config = server_config();
  // Pin tau_thres so the dampening curve (and hence the weight ordering
  // between stale and fresh) is fixed, not estimated from warm-up traffic.
  config.aggregator.fixed_tau_thres = 2.0;
  RuntimeConfig runtime;
  runtime.queue_capacity = 8;
  runtime.queue_shards = 1;
  runtime.overload_policy = OverloadPolicy::kShedLowestWeight;
  runtime.shed_watermark = 1;
  ConcurrentFleetServer server(*model, pretrained_iprof(), config, runtime);
  // Drain between warm-ups: see ShedStalestEvictsTheStalestQueuedGradient.
  for (std::size_t i = 0; i < 4; ++i) {
    GradientJob job = varied_job(*model, core::kDefaultModelId, i);
    ASSERT_TRUE(server.try_submit(job).accepted);
    server.drain();
  }
  const std::size_t fed = park_planner(server, *model);
  const std::size_t now = server.version();
  ASSERT_GE(now, 4u);

  GradientJob stale = varied_job(*model, core::kDefaultModelId, 30);
  ASSERT_TRUE(server.try_submit(stale).accepted);  // heavily dampened
  GradientJob fresh = varied_job(*model, core::kDefaultModelId, 31);
  fresh.task_version = now;  // weight ~1
  ASSERT_TRUE(server.try_submit(fresh).accepted);
  EXPECT_EQ(server.host_stats().shed_drops, 1u);
  server.resume();
  server.drain();
  EXPECT_EQ(server.stats().processed, 4u + fed + 1u);
  server.stop();
}

TEST(ShedPolicyServerTest, RefusalsAreCountedTracedAndNeverTicketBearing) {
  // All shed costs are equal while the clock sits at zero, so a paused
  // host refuses every job above the watermark deterministically — and the
  // survivors train the model exactly as if the refused jobs were never
  // sent (compared bitwise against that very run).
  constexpr std::size_t kJobs = 6;
  constexpr std::size_t kKept = 2;  // watermark
  auto reference = nn::zoo::mlp(8, 4, 3);
  reference->init(5);
  {
    RuntimeConfig runtime;
    runtime.start_paused = true;
    ConcurrentFleetServer server(*reference, pretrained_iprof(),
                                 server_config(), runtime);
    for (std::size_t i = 0; i < kKept; ++i) {
      GradientJob job = varied_job(*reference, core::kDefaultModelId, i);
      ASSERT_TRUE(server.try_submit(job).accepted);
    }
    server.resume();
    server.drain();
    server.stop();
  }

  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(5);
  RuntimeConfig runtime;
  runtime.start_paused = true;
  runtime.queue_capacity = 8;
  runtime.queue_shards = 1;
  runtime.overload_policy = OverloadPolicy::kShedStalest;
  runtime.shed_watermark = kKept;
  runtime.telemetry.enabled = true;
  ConcurrentFleetServer server(*model, pretrained_iprof(), server_config(),
                               runtime);
  for (std::size_t i = 0; i < kJobs; ++i) {
    GradientJob job = varied_job(*model, core::kDefaultModelId, i);
    const core::GradientReceipt receipt = server.try_submit(job);
    if (i < kKept) {
      EXPECT_TRUE(receipt.accepted);
    } else {
      EXPECT_FALSE(receipt.accepted);
      EXPECT_TRUE(receipt.shed);
      EXPECT_FALSE(receipt.retryable);
    }
  }
  server.resume();
  server.drain();
  EXPECT_EQ(server.stats().processed, kKept);
  EXPECT_EQ(server.stats().shed_drops, kJobs - kKept);

  // Every refusal emitted one kShedDrop instant with ticket 0 (a refused
  // job never draws a ticket), and the "queue.shed" counter matches.
  const auto records = server.telemetry()->tracer().collect();
  std::size_t shed_events = 0;
  for (const auto& record : records) {
    if (record.event.phase == telemetry::TracePhase::kShedDrop) {
      ++shed_events;
      EXPECT_EQ(record.event.ticket, 0u);
    }
  }
  EXPECT_EQ(shed_events, kJobs - kKept);
  const auto metrics = server.telemetry()->metrics().snapshot();
  bool found = false;
  for (const auto& [name, value] : metrics.counters) {
    if (name == "queue.shed") {
      found = true;
      EXPECT_EQ(value, kJobs - kKept);
    }
  }
  EXPECT_TRUE(found);
  server.stop();
  EXPECT_TRUE(bitwise_equal(params_of(*model), params_of(*reference)));
}

TEST(ShedPolicyServerTest, ExplicitRejectNewestIsBitwiseThePrePolicyHost) {
  // kRejectNewest (+ a watermark, which it ignores, + an unarmed injector)
  // must leave the determinism matrix untouched: same jobs, same model,
  // bit for bit, and nothing ever shed.
  const auto run = [](bool with_policy_knobs) {
    auto model = nn::zoo::mlp(8, 4, 3);
    model->init(9);
    FaultInjector unarmed(99);
    RuntimeConfig runtime;
    runtime.start_paused = true;
    if (with_policy_knobs) {
      runtime.overload_policy = OverloadPolicy::kRejectNewest;
      runtime.shed_watermark = 3;
      runtime.fault_injector = &unarmed;
    }
    ConcurrentFleetServer server(*model, pretrained_iprof(), server_config(),
                                 runtime);
    for (std::size_t i = 0; i < 6; ++i) {
      GradientJob job = varied_job(*model, core::kDefaultModelId, i);
      EXPECT_TRUE(server.try_submit(job).accepted);
    }
    server.resume();
    server.drain();
    EXPECT_EQ(server.host_stats().shed_drops, 0u);
    server.stop();
    return params_of(*model);
  };
  EXPECT_TRUE(bitwise_equal(run(false), run(true)));
}

}  // namespace
}  // namespace fleet::runtime
