// Wire-format hardening (DESIGN.md §12): frame round trips, every header
// validation path, the decode-before-submit reject accounting on the real
// server, and a seeded corrupt-frame fuzz loop asserting malformed frames
// are always counted and never reach a fold.
#include "fleet/net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "../test_util.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/concurrent_server.hpp"
#include "fleet/stats/rng.hpp"
#include "fleet/telemetry/telemetry.hpp"

namespace fleet::net {
namespace {

using test::bitwise_equal;
using test::pretrained_iprof;

runtime::GradientJob sample_job(std::size_t n_values, std::size_t n_classes,
                                std::uint64_t seed) {
  stats::Rng rng(seed);
  runtime::GradientJob job;
  job.model_id = 3;
  job.task_version = 17;
  job.mini_batch = 24;
  job.gradient.resize(n_values);
  for (float& g : job.gradient) {
    g = static_cast<float>(rng.gaussian(0.0, 0.02));
  }
  job.label_dist = stats::LabelDistribution(n_classes);
  job.label_dist.add(static_cast<int>(seed % n_classes), 3);
  job.label_dist.add(static_cast<int>((seed + 1) % n_classes), 1);
  return job;
}

void expect_meta_roundtrip(const runtime::GradientJob& sent,
                           const runtime::GradientJob& got) {
  EXPECT_EQ(got.model_id, sent.model_id);
  EXPECT_EQ(got.task_version, sent.task_version);
  EXPECT_EQ(got.mini_batch, sent.mini_batch);
  ASSERT_EQ(got.label_dist.n_classes(), sent.label_dist.n_classes());
  for (std::size_t c = 0; c < sent.label_dist.n_classes(); ++c) {
    EXPECT_EQ(got.label_dist.count(c), sent.label_dist.count(c));
  }
  EXPECT_EQ(got.ticket, 0u);
  EXPECT_EQ(got.enqueue_ns, 0u);
  EXPECT_FALSE(got.feedback.has_value());
}

TEST(WireFormatTest, Int8FrameRoundTripsBitwise) {
  const runtime::GradientJob job = sample_job(777, 5, 1);
  std::vector<std::uint8_t> frame;
  encode_job(job, PayloadKind::kInt8, frame);
  EXPECT_EQ(frame.size(), wire_frame_size(PayloadKind::kInt8, 5, 777));

  WireDecoder decoder;
  runtime::GradientJob decoded;
  ASSERT_EQ(decoder.decode(frame, decoded), WireError::kOk);
  expect_meta_roundtrip(job, decoded);
  // The decoded gradient is bitwise identical to dequantizing the same
  // quantized payload in-process — the property the end-to-end bitwise
  // ingest test builds on.
  const auto expected = dequantize_gradient(quantize_gradient(job.gradient));
  EXPECT_TRUE(bitwise_equal(expected, decoded.gradient));
}

TEST(WireFormatTest, Float32FallbackRoundTripsVerbatim) {
  const runtime::GradientJob job = sample_job(129, 3, 2);
  std::vector<std::uint8_t> frame;
  encode_job(job, PayloadKind::kFloat32, frame);
  EXPECT_EQ(frame.size(), wire_frame_size(PayloadKind::kFloat32, 3, 129));

  WireDecoder decoder;
  runtime::GradientJob decoded;
  ASSERT_EQ(decoder.decode(frame, decoded), WireError::kOk);
  expect_meta_roundtrip(job, decoded);
  EXPECT_TRUE(bitwise_equal(job.gradient, decoded.gradient));
}

TEST(WireFormatTest, Int8IsFourTimesSmallerOnTheWire) {
  const runtime::GradientJob job = sample_job(12000, 4, 3);
  std::vector<std::uint8_t> int8_frame, raw_frame;
  encode_job(job, PayloadKind::kInt8, int8_frame);
  encode_job(job, PayloadKind::kFloat32, raw_frame);
  EXPECT_LT(int8_frame.size(), raw_frame.size() / 3);
}

TEST(WireFormatTest, DecodeReusesTheGradientBuffer) {
  // Two-wave zero-growth on the decode target: a fixed-size stream decodes
  // into the same buffer with no steady-state allocation.
  const runtime::GradientJob job_a = sample_job(500, 4, 4);
  const runtime::GradientJob job_b = sample_job(500, 4, 5);
  std::vector<std::uint8_t> frame;
  WireDecoder decoder;
  runtime::GradientJob decoded;

  encode_job(job_a, PayloadKind::kInt8, frame);
  ASSERT_EQ(decoder.decode(frame, decoded), WireError::kOk);
  const float* const data_before = decoded.gradient.data();
  const std::size_t capacity_before = decoded.gradient.capacity();

  encode_job(job_b, PayloadKind::kInt8, frame);
  ASSERT_EQ(decoder.decode(frame, decoded), WireError::kOk);
  EXPECT_EQ(decoded.gradient.data(), data_before);
  EXPECT_EQ(decoded.gradient.capacity(), capacity_before);
}

// --- header validation, one test per reject path -------------------------

std::vector<std::uint8_t> valid_frame(std::size_t n_values = 64,
                                      std::size_t n_classes = 3) {
  std::vector<std::uint8_t> frame;
  encode_job(sample_job(n_values, n_classes, 6), PayloadKind::kInt8, frame);
  return frame;
}

WireError decode_of(const std::vector<std::uint8_t>& frame,
                    const WireLimits& limits = {}) {
  WireDecoder decoder(limits);
  runtime::GradientJob job;
  return decoder.decode(frame, job);
}

TEST(WireFormatTest, RejectsTruncatedHeader) {
  const auto frame = valid_frame();
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                std::size_t{8}, kWireHeaderBytes - 1}) {
    const std::vector<std::uint8_t> cut_frame(frame.begin(),
                                              frame.begin() + cut);
    EXPECT_EQ(decode_of(cut_frame), WireError::kTruncatedHeader) << cut;
  }
}

TEST(WireFormatTest, RejectsBadMagicAndVersion) {
  auto frame = valid_frame();
  frame[0] ^= 0xFF;
  EXPECT_EQ(decode_of(frame), WireError::kBadMagic);

  frame = valid_frame();
  frame[4] ^= 0x01;  // wire version
  EXPECT_EQ(decode_of(frame), WireError::kBadVersion);

  frame = valid_frame();
  frame[7] = 0x80;  // reserved flags must be zero
  EXPECT_EQ(decode_of(frame), WireError::kBadFlags);

  frame = valid_frame();
  frame[6] = 0x7F;  // unknown payload kind
  EXPECT_EQ(decode_of(frame), WireError::kBadKind);
}

TEST(WireFormatTest, RejectsLengthMismatch) {
  // Payload shorter or longer than the header's claim.
  auto frame = valid_frame();
  auto shorter = frame;
  shorter.pop_back();
  EXPECT_EQ(decode_of(shorter), WireError::kLengthMismatch);
  auto longer = frame;
  longer.push_back(0);
  EXPECT_EQ(decode_of(longer), WireError::kLengthMismatch);
  // A kind flip changes the per-value width, so the same bytes stop
  // matching the claimed layout.
  frame[6] = 0x02;  // kFloat32
  EXPECT_EQ(decode_of(frame), WireError::kLengthMismatch);
}

TEST(WireFormatTest, RejectsZeroLengthGradient) {
  auto frame = valid_frame();
  for (std::size_t i = 32; i < 36; ++i) frame[i] = 0;  // value count = 0
  EXPECT_EQ(decode_of(frame), WireError::kEmptyGradient);
}

TEST(WireFormatTest, SizeCeilingsRejectBeforeAnyAllocation) {
  // A hostile length claim must fail the limit check, not become an
  // allocation: decode against a tiny ceiling and a 4-billion claim.
  auto frame = valid_frame();
  frame[32] = 0xFF;
  frame[33] = 0xFF;
  frame[34] = 0xFF;
  frame[35] = 0xFF;  // value count = 2^32 - 1
  EXPECT_EQ(decode_of(frame), WireError::kTooLarge);

  WireLimits tight;
  tight.max_values = 16;
  EXPECT_EQ(decode_of(valid_frame(64, 3), tight), WireError::kTooLarge);
  tight = WireLimits{};
  tight.max_classes = 2;
  EXPECT_EQ(decode_of(valid_frame(64, 3), tight), WireError::kTooLarge);
}

TEST(WireFormatTest, RejectsBadScaleAndNonFinitePayload) {
  // int8 kind: scale must be finite and positive.
  auto frame = valid_frame();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(frame.data() + 36, &nan, sizeof(nan));
  EXPECT_EQ(decode_of(frame), WireError::kBadScale);
  frame = valid_frame();
  const float zero = 0.0f;
  std::memcpy(frame.data() + 36, &zero, sizeof(zero));
  EXPECT_EQ(decode_of(frame), WireError::kBadScale);

  // raw kind: a NaN smuggled into the payload must not reach the fold.
  runtime::GradientJob job = sample_job(32, 3, 7);
  std::vector<std::uint8_t> raw;
  encode_job(job, PayloadKind::kFloat32, raw);
  const std::size_t payload_at = kWireHeaderBytes + 4 * 3;
  std::memcpy(raw.data() + payload_at + 4 * 5, &nan, sizeof(nan));
  EXPECT_EQ(decode_of(raw), WireError::kNonFinitePayload);
}

// --- serving-path rejection accounting ------------------------------------

core::ServerConfig server_config() {
  core::ServerConfig config;
  config.learning_rate = 0.1f;
  return config;
}

/// A frame-sized job for `model`, valid except for whatever the test
/// corrupts afterwards.
std::vector<std::uint8_t> frame_for(const nn::TrainableModel& model,
                                    std::uint64_t seed) {
  runtime::GradientJob job =
      sample_job(model.parameter_count(), model.n_classes(), seed);
  job.model_id = core::kDefaultModelId;
  job.task_version = 0;
  std::vector<std::uint8_t> frame;
  encode_job(job, PayloadKind::kInt8, frame);
  return frame;
}

TEST(WireServerTest, WireRejectsAreCountedAndTelemetryVisible) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(5);
  runtime::RuntimeConfig runtime;
  runtime.telemetry.enabled = true;
  runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                        server_config(), runtime);

  auto frame = frame_for(*model, 1);
  frame[0] ^= 0xFF;  // bad magic
  WireError error = WireError::kOk;
  runtime::GradientJob scratch;
  const auto receipt = server.try_submit_wire(frame, scratch, &error);
  EXPECT_FALSE(receipt.accepted);
  EXPECT_FALSE(receipt.retryable);
  EXPECT_EQ(error, WireError::kBadMagic);
  EXPECT_EQ(receipt.reject_reason, "wire: bad magic");

  // A valid frame still lands after the reject (the reject took no ticket).
  auto good = frame_for(*model, 2);
  EXPECT_TRUE(server.try_submit_wire(good, scratch, &error).accepted);
  EXPECT_EQ(error, WireError::kOk);
  server.drain();

  const auto stats = server.stats();
  EXPECT_EQ(stats.wire_rejects, 1u);
  EXPECT_EQ(stats.processed, 1u);
  EXPECT_EQ(stats.submitted, 1u);

  // Telemetry: the counter and the reject trace instant both saw it.
  auto* telemetry = server.telemetry();
  ASSERT_NE(telemetry, nullptr);
  const auto metrics = telemetry->metrics().snapshot();
  std::uint64_t rejects_counted = 0;
  bool counter_found = false;
  for (const auto& [name, value] : metrics.counters) {
    if (name == "wire.rejects") {
      counter_found = true;
      rejects_counted = value;
    }
  }
  ASSERT_TRUE(counter_found);
  EXPECT_EQ(rejects_counted, 1u);
  std::size_t reject_events = 0;
  for (const auto& record : telemetry->tracer().collect()) {
    if (record.event.phase == telemetry::TracePhase::kWireReject) {
      ++reject_events;
      EXPECT_EQ(record.event.b,
                static_cast<std::uint64_t>(WireError::kBadMagic));
    }
  }
  EXPECT_EQ(reject_events, 1u);
  server.stop();
}

TEST(WireServerTest, CorruptFrameFuzzNothingReachesAFold) {
  // 100 seeded corruptions — header bytes, truncations, length fields —
  // against a live server: every frame must be rejected AND counted, the
  // model must never move, and the accounting identity must hold exactly.
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(6);
  const auto params_before = [&] {
    const auto view = model->parameters_view();
    return std::vector<float>(view.begin(), view.end());
  }();
  runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                        server_config(), runtime::RuntimeConfig{});

  const auto pristine = frame_for(*model, 3);
  runtime::GradientJob scratch;
  std::size_t rejects = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    stats::Rng rng(seed);
    auto frame = pristine;
    switch (seed % 3) {
      case 0: {
        // Corrupt one byte of magic/version/kind/flags: always malformed
        // (a kind flip changes the payload width, so it length-mismatches).
        const auto at = static_cast<std::size_t>(rng.uniform_int(0, 7));
        frame[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
        break;
      }
      case 1: {
        // Truncate anywhere short of the full frame.
        const auto cut = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
        frame.resize(cut);
        break;
      }
      default: {
        // Corrupt a length field (class count / value count): the claimed
        // layout stops matching the actual bytes (or trips the ceiling /
        // empty-gradient screens).
        const auto at = static_cast<std::size_t>(rng.uniform_int(28, 35));
        frame[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
        break;
      }
    }
    WireError error = WireError::kOk;
    const auto receipt = server.try_submit_wire(frame, scratch, &error);
    EXPECT_FALSE(receipt.accepted) << "seed " << seed;
    EXPECT_NE(error, WireError::kOk) << "seed " << seed;
    ++rejects;
    EXPECT_EQ(server.host_stats().wire_rejects, rejects);
  }
  server.drain();
  const auto stats = server.stats();
  EXPECT_EQ(stats.wire_rejects, 100u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.processed, 0u);
  EXPECT_EQ(server.version(), 0u);
  server.stop();
  const auto view = model->parameters_view();
  EXPECT_TRUE(bitwise_equal(
      params_before, std::vector<float>(view.begin(), view.end())));
}

TEST(WireServerTest, WellFormedFrameForWrongModelIsAServerReject) {
  // Decode succeeds, validation refuses: a size-mismatched gradient is a
  // permanent server-side reject, not a wire reject.
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(7);
  runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                        server_config(), runtime::RuntimeConfig{});
  runtime::GradientJob job = sample_job(model->parameter_count() + 1,
                                        model->n_classes(), 8);
  job.model_id = core::kDefaultModelId;
  job.task_version = 0;
  std::vector<std::uint8_t> frame;
  encode_job(job, PayloadKind::kInt8, frame);

  WireError error = WireError::kOk;
  runtime::GradientJob scratch;
  const auto receipt = server.try_submit_wire(frame, scratch, &error);
  EXPECT_EQ(error, WireError::kOk);
  EXPECT_FALSE(receipt.accepted);
  EXPECT_FALSE(receipt.retryable);
  EXPECT_EQ(receipt.reject_reason, "gradient size mismatch");
  EXPECT_EQ(server.host_stats().wire_rejects, 0u);
  server.stop();
}

}  // namespace
}  // namespace fleet::net
