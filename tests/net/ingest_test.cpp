// Loopback ingest front end (DESIGN.md §12): serialized frames through the
// byte ring + injector threads must train the host exactly as in-process
// submission of the same dequantized gradients would — bitwise — and every
// frame must land in exactly one accounting bucket.
#include "fleet/net/ingest.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "fleet/net/compression.hpp"
#include "fleet/net/wire.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/concurrent_server.hpp"

namespace fleet::net {
namespace {

using test::bitwise_equal;
using test::pretrained_iprof;

core::ServerConfig server_config() {
  core::ServerConfig config;
  config.learning_rate = 0.1f;
  return config;
}

/// Parameter-index-varied gradient (the multitenant suite's idiom) so
/// fold-order mistakes change the model instead of cancelling out.
runtime::GradientJob varied_job(const nn::TrainableModel& model,
                                core::ModelId id, std::size_t salt) {
  runtime::GradientJob job;
  job.model_id = id;
  job.task_version = 0;
  job.gradient.resize(model.parameter_count());
  for (std::size_t i = 0; i < job.gradient.size(); ++i) {
    job.gradient[i] =
        0.001f * static_cast<float>((i * 7 + salt * 13) % 23) - 0.01f;
  }
  job.label_dist = stats::LabelDistribution(model.n_classes());
  job.label_dist.add(static_cast<int>(salt % model.n_classes()), 2);
  job.mini_batch = 4;
  return job;
}

std::vector<float> params_of(nn::TrainableModel& model) {
  const auto view = model.parameters_view();
  return std::vector<float>(view.begin(), view.end());
}

/// The payload kind frame `salt` uses in the mixed-kind tests: alternate
/// int8 and the raw-float fallback so both decode paths hit every fold mix.
PayloadKind kind_of(std::size_t salt) {
  return (salt % 2 == 0) ? PayloadKind::kInt8 : PayloadKind::kFloat32;
}

/// What the server folds after frame `salt` crosses the wire: int8 frames
/// fold the quantize->dequantize image, float32 frames fold the gradient
/// verbatim.
runtime::GradientJob post_wire_job(const nn::TrainableModel& model,
                                   core::ModelId id, std::size_t salt) {
  runtime::GradientJob job = varied_job(model, id, salt);
  if (kind_of(salt) == PayloadKind::kInt8) {
    job.gradient = dequantize_gradient(quantize_gradient(job.gradient));
  }
  return job;
}

/// Solo in-process reference: one model, one server, the post-wire
/// gradients submitted directly — what loopback ingest must reproduce.
std::vector<float> solo_reference(std::size_t n_jobs, std::uint64_t init_seed,
                                  const runtime::RuntimeConfig& base) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(init_seed);
  runtime::RuntimeConfig runtime = base;
  runtime.start_paused = true;
  runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                        server_config(), runtime);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    runtime::GradientJob job =
        post_wire_job(*model, core::kDefaultModelId, i);
    EXPECT_TRUE(server.try_submit(job).accepted);
  }
  server.resume();
  server.drain();
  server.stop();
  return params_of(*model);
}

TEST(LoopbackIngestTest, WireFedHostMatchesInProcessBitwise) {
  // Two tenants behind one host, fed interleaved A,B,A,B serialized frames
  // (mixed payload kinds) through the loopback ring with ONE injector —
  // submission order equals send order, so each session must end bitwise
  // identical to its solo in-process reference.
  constexpr std::size_t kJobsA = 12;
  constexpr std::size_t kJobsB = 9;
  for (const std::size_t shards : {1u, 4u}) {
    runtime::RuntimeConfig base;
    base.aggregation_shards = shards;
    const auto ref_a = solo_reference(kJobsA, 7, base);
    const auto ref_b = solo_reference(kJobsB, 19, base);

    auto model_a = nn::zoo::mlp(8, 4, 3);
    model_a->init(7);
    auto model_b = nn::zoo::mlp(8, 4, 3);
    model_b->init(19);
    runtime::RuntimeConfig runtime = base;
    runtime.start_paused = true;
    runtime::ConcurrentFleetServer host(runtime);
    const core::ModelId id_a =
        host.register_model(*model_a, pretrained_iprof(), server_config());
    const core::ModelId id_b =
        host.register_model(*model_b, pretrained_iprof(), server_config());

    LoopbackIngest::Config cfg;
    cfg.injector_threads = 1;
    LoopbackIngest ingest(host, cfg);
    std::vector<std::uint8_t> frame;
    for (std::size_t i = 0; i < std::max(kJobsA, kJobsB); ++i) {
      if (i < kJobsA) {
        encode_job(varied_job(*model_a, id_a, i), kind_of(i), frame);
        ASSERT_TRUE(ingest.try_send(frame));
      }
      if (i < kJobsB) {
        encode_job(varied_job(*model_b, id_b, i), kind_of(i), frame);
        ASSERT_TRUE(ingest.try_send(frame));
      }
    }
    ingest.drain();   // every frame decoded + admitted (host still paused)
    host.resume();
    host.drain();
    ingest.close();

    const auto stats = ingest.stats();
    EXPECT_EQ(stats.frames_sent, kJobsA + kJobsB);
    EXPECT_EQ(stats.frames_submitted, kJobsA + kJobsB);
    EXPECT_EQ(stats.wire_rejects, 0u);
    EXPECT_EQ(stats.server_rejects, 0u);
    EXPECT_EQ(stats.ring_rejects, 0u);
    EXPECT_EQ(host.version(id_a), kJobsA);
    EXPECT_EQ(host.version(id_b), kJobsB);
    EXPECT_EQ(host.host_stats().wire_rejects, 0u);
    host.stop();

    EXPECT_TRUE(bitwise_equal(ref_a, params_of(*model_a)))
        << "A diverged over the wire: shards=" << shards;
    EXPECT_TRUE(bitwise_equal(ref_b, params_of(*model_b)))
        << "B diverged over the wire: shards=" << shards;
  }
}

TEST(LoopbackIngestTest, ConcurrentSendersAccountingIdentityHolds) {
  // 3 sender threads x 40 frames (every 5th malformed) through 4 injector
  // threads: after the barrier, frames_sent must equal submitted + wire
  // rejects + server rejects exactly, the server's own reject ledger must
  // agree, and everything admitted must fold.
  constexpr std::size_t kSenders = 3;
  constexpr std::size_t kPerSender = 40;
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(5);
  runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                        server_config(),
                                        runtime::RuntimeConfig{});
  LoopbackIngest::Config cfg;
  cfg.injector_threads = 4;
  LoopbackIngest ingest(server, cfg);

  std::vector<std::thread> senders;
  for (std::size_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      std::vector<std::uint8_t> frame;
      for (std::size_t i = 0; i < kPerSender; ++i) {
        encode_job(varied_job(*model, core::kDefaultModelId,
                              s * kPerSender + i),
                   kind_of(i), frame);
        if (i % 5 == 4) frame[0] ^= 0xFF;  // malformed: bad magic
        while (!ingest.try_send(frame)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : senders) t.join();
  ingest.drain();
  server.drain();
  ingest.close();

  const auto stats = ingest.stats();
  constexpr std::size_t kTotal = kSenders * kPerSender;
  constexpr std::size_t kMalformed = kSenders * (kPerSender / 5);
  EXPECT_EQ(stats.frames_sent, kTotal);
  EXPECT_EQ(stats.wire_rejects, kMalformed);
  EXPECT_EQ(stats.server_rejects, 0u);
  EXPECT_EQ(stats.frames_submitted, kTotal - kMalformed);
  EXPECT_EQ(stats.frames_submitted + stats.wire_rejects + stats.server_rejects,
            stats.frames_sent);
  EXPECT_GT(stats.ring_max_bytes_seen, 0u);

  const auto server_stats = server.stats();
  EXPECT_EQ(server_stats.wire_rejects, kMalformed);
  EXPECT_EQ(server_stats.submitted, kTotal - kMalformed);
  EXPECT_EQ(server_stats.processed, kTotal - kMalformed);
  EXPECT_EQ(server.version(), kTotal - kMalformed);
  server.stop();
}

TEST(LoopbackIngestTest, BackpressureWithoutRetryIsADeterministicReject) {
  // Paused host, queue capacity 2, retries off, one injector: of 5 valid
  // frames exactly the first 2 are admitted and the rest are counted
  // server rejects — no frame is silently lost.
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(6);
  runtime::RuntimeConfig runtime;
  runtime.start_paused = true;
  runtime.queue_capacity = 2;
  runtime.queue_shards = 1;
  runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                        server_config(), runtime);
  LoopbackIngest::Config cfg;
  cfg.injector_threads = 1;
  cfg.retry_backpressure = false;
  LoopbackIngest ingest(server, cfg);

  std::vector<std::uint8_t> frame;
  for (std::size_t i = 0; i < 5; ++i) {
    encode_job(varied_job(*model, core::kDefaultModelId, i),
               PayloadKind::kInt8, frame);
    ASSERT_TRUE(ingest.try_send(frame));
  }
  ingest.drain();
  const auto stats = ingest.stats();
  EXPECT_EQ(stats.frames_sent, 5u);
  EXPECT_EQ(stats.frames_submitted, 2u);
  EXPECT_EQ(stats.server_rejects, 3u);
  EXPECT_EQ(stats.wire_rejects, 0u);
  EXPECT_EQ(stats.backpressure_retries, 0u);

  server.resume();
  server.drain();
  EXPECT_EQ(server.stats().processed, 2u);
  ingest.close();
  server.stop();
}

TEST(LoopbackIngestTest, FullRingRefusesSendsAndRetriesDrainAfterResume) {
  // Queue capacity 1 + paused host wedges the injector in its retry loop;
  // the 2-slot ring then fills and try_send refuses (counted, frame not
  // taken). Resuming lets every accepted frame land — retries are loss-free.
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(7);
  runtime::RuntimeConfig runtime;
  runtime.start_paused = true;
  runtime.queue_capacity = 1;
  runtime.queue_shards = 1;
  runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                        server_config(), runtime);
  LoopbackIngest::Config cfg;
  cfg.injector_threads = 1;
  cfg.max_frames = 2;
  cfg.retry_backpressure = true;
  // Unbounded on purpose: this test deliberately wedges the injector
  // against the paused host and resumes it — a budget would give the
  // frame up as a server reject before resume() lands.
  cfg.max_submit_attempts = 0;
  LoopbackIngest ingest(server, cfg);

  // Bounded spin on an observable stat — the staging below is what makes
  // the ring-full refusal deterministic instead of a thread race.
  const auto wait_until = [&](auto&& predicate) {
    for (int spin = 0; spin < 10'000'000 && !predicate(); ++spin) {
      std::this_thread::yield();
    }
    return predicate();
  };

  std::vector<std::uint8_t> frame;
  // Frame 0 fills the paused server's 1-slot queue...
  encode_job(varied_job(*model, core::kDefaultModelId, 0),
             PayloadKind::kInt8, frame);
  ASSERT_TRUE(ingest.try_send(frame));
  ASSERT_TRUE(wait_until(
      [&] { return ingest.stats().frames_submitted == 1; }));
  // ...frame 1 wedges the injector in its retry loop...
  encode_job(varied_job(*model, core::kDefaultModelId, 1),
             PayloadKind::kInt8, frame);
  ASSERT_TRUE(ingest.try_send(frame));
  ASSERT_TRUE(wait_until(
      [&] { return ingest.stats().backpressure_retries >= 1; }));
  // ...frames 2 and 3 fill the 2-slot ring, and frame 4 must be refused.
  for (std::size_t salt = 2; salt < 4; ++salt) {
    encode_job(varied_job(*model, core::kDefaultModelId, salt),
               PayloadKind::kInt8, frame);
    ASSERT_TRUE(ingest.try_send(frame));
  }
  const std::size_t sent = 4;
  encode_job(varied_job(*model, core::kDefaultModelId, 4),
             PayloadKind::kInt8, frame);
  EXPECT_FALSE(ingest.try_send(frame));
  EXPECT_EQ(ingest.stats().ring_rejects, 1u);

  server.resume();
  ingest.drain();
  server.drain();
  ingest.close();

  const auto stats = ingest.stats();
  EXPECT_EQ(stats.frames_sent, sent);
  EXPECT_EQ(stats.frames_submitted, sent);  // retries lost nothing
  EXPECT_EQ(stats.server_rejects, 0u);
  EXPECT_GE(stats.backpressure_retries, 1u);
  EXPECT_EQ(server.stats().processed, sent);
  server.stop();
}

TEST(LoopbackIngestTest, ClosedFrontEndRefusesWithoutCounting) {
  auto model = nn::zoo::mlp(8, 4, 3);
  model->init(8);
  runtime::ConcurrentFleetServer server(*model, pretrained_iprof(),
                                        server_config(),
                                        runtime::RuntimeConfig{});
  LoopbackIngest ingest(server);
  std::vector<std::uint8_t> frame;
  encode_job(varied_job(*model, core::kDefaultModelId, 0),
             PayloadKind::kInt8, frame);
  ASSERT_TRUE(ingest.try_send(frame));
  ingest.close();
  EXPECT_FALSE(ingest.try_send(frame));
  const auto stats = ingest.stats();
  EXPECT_EQ(stats.frames_sent, 1u);
  // A closed-front-end refusal is not a capacity event.
  EXPECT_EQ(stats.ring_rejects, 0u);
  server.drain();
  EXPECT_EQ(server.stats().processed, 1u);
  server.stop();

  EXPECT_THROW(LoopbackIngest(server, LoopbackIngest::Config{.capacity_bytes = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::net
