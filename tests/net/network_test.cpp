#include "fleet/net/network_model.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace fleet::net {
namespace {

TEST(NetworkModelTest, LatenciesArePositiveAndNearBase) {
  NetworkModel net(NetworkModel::Config{});
  stats::Rng rng(1);
  double sum_lte = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double lte = net.sample_transfer_s(Technology::kLte4G, rng);
    EXPECT_GT(lte, 0.0);
    sum_lte += lte;
  }
  EXPECT_NEAR(sum_lte / n, 1.1, 0.05);  // paper's 4G number
}

TEST(NetworkModelTest, HspaSlowerThanLte) {
  NetworkModel net(NetworkModel::Config{});
  stats::Rng rng(2);
  double lte = 0.0, hspa = 0.0;
  for (int i = 0; i < 2000; ++i) {
    lte += net.sample_transfer_s(Technology::kLte4G, rng);
    hspa += net.sample_transfer_s(Technology::kHspa3G, rng);
  }
  EXPECT_GT(hspa, lte * 2.0);
}

TEST(NetworkModelTest, MixFollowsLteFraction) {
  NetworkModel::Config cfg;
  cfg.lte_fraction = 0.5;
  cfg.jitter = 0.0;
  NetworkModel net(cfg);
  stats::Rng rng(3);
  int fast = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (net.sample_transfer_s(rng) < 2.0) ++fast;
  }
  EXPECT_NEAR(fast / static_cast<double>(n), 0.5, 0.03);
}

TEST(NetworkModelTest, RejectsBadConfig) {
  NetworkModel::Config cfg;
  cfg.lte_fraction = 1.5;
  EXPECT_THROW(NetworkModel{cfg}, std::invalid_argument);
  cfg = NetworkModel::Config{};
  cfg.lte_latency_s = 0.0;
  EXPECT_THROW(NetworkModel{cfg}, std::invalid_argument);
}

TEST(NetworkModelTest, RejectsNegativeJitter) {
  // Regression: a negative jitter silently flipped the Gaussian draw and
  // skewed every transfer-time sample; NaN would poison them outright.
  NetworkModel::Config cfg;
  cfg.jitter = -0.15;
  EXPECT_THROW(NetworkModel{cfg}, std::invalid_argument);
  cfg.jitter = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(NetworkModel{cfg}, std::invalid_argument);
  cfg.jitter = 0.0;  // boundary stays legal (deterministic latencies)
  NetworkModel net(cfg);
  stats::Rng rng(9);
  EXPECT_DOUBLE_EQ(net.sample_transfer_s(Technology::kLte4G, rng),
                   cfg.lte_latency_s);
}

TEST(RoundTripModelTest, PaperDefaultMatchesSection31) {
  const RoundTripModel rt = RoundTripModel::paper_default();
  EXPECT_DOUBLE_EQ(rt.minimum_s(), 7.1);
  EXPECT_DOUBLE_EQ(rt.mean_s(), 8.45);
  stats::Rng rng(4);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rt.sample_s(rng);
    EXPECT_GE(x, 7.1);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 8.45, 0.05);
}

TEST(RoundTripModelTest, RejectsInvalidParameters) {
  EXPECT_THROW(RoundTripModel(5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(RoundTripModel(-1.0, 5.0), std::invalid_argument);
}

}  // namespace
}  // namespace fleet::net
