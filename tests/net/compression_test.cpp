#include "fleet/net/compression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fleet/core/online_trainer.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/stats/rng.hpp"

namespace fleet::net {
namespace {

TEST(CompressionTest, RoundTripErrorIsBounded) {
  stats::Rng rng(1);
  std::vector<float> gradient(5000);
  for (float& g : gradient) {
    g = static_cast<float>(rng.gaussian(0.0, 0.01));
  }
  const QuantizedGradient q = quantize_gradient(gradient);
  // Uniform quantization: error at most one half step.
  EXPECT_LE(quantization_error(gradient, q),
            static_cast<double>(q.scale) * 0.5 + 1e-9);
}

TEST(CompressionTest, FourTimesSmallerOnTheWire) {
  std::vector<float> gradient(12000, 0.5f);
  const QuantizedGradient q = quantize_gradient(gradient);
  EXPECT_LT(q.byte_size(), gradient.size() * sizeof(float) / 3);
}

TEST(CompressionTest, ExtremesMapToFullRange) {
  const std::vector<float> gradient{-2.0f, 0.0f, 2.0f};
  const QuantizedGradient q = quantize_gradient(gradient);
  EXPECT_EQ(q.values[0], -127);
  EXPECT_EQ(q.values[1], 0);
  EXPECT_EQ(q.values[2], 127);
}

TEST(CompressionTest, AllZeroGradientSurvives) {
  const std::vector<float> gradient(10, 0.0f);
  const QuantizedGradient q = quantize_gradient(gradient);
  for (float v : dequantize_gradient(q)) EXPECT_EQ(v, 0.0f);
}

TEST(CompressionTest, NonFiniteInputThrows) {
  // Regression: NaN used to propagate through max_abs into the scale and
  // std::lround(NaN/Inf) is UB — the codec must refuse at the boundary.
  std::vector<float> gradient(8, 0.25f);
  gradient[3] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(quantize_gradient(gradient), std::invalid_argument);
  gradient[3] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(quantize_gradient(gradient), std::invalid_argument);
  gradient[3] = -std::numeric_limits<float>::infinity();
  EXPECT_THROW(quantize_gradient(gradient), std::invalid_argument);
}

TEST(CompressionTest, DenormalGradientNeverDividesByZeroScale) {
  // Regression: a denormal max|g| could round max_abs/127 down to zero and
  // g/0 = Inf hits the same lround UB. The scale is clamped to the
  // smallest normal float; tiny values round to 0, within the error bound.
  std::vector<float> gradient(4, 0.0f);
  gradient[1] = std::numeric_limits<float>::denorm_min();
  gradient[2] = -std::numeric_limits<float>::denorm_min();
  const QuantizedGradient q = quantize_gradient(gradient);
  EXPECT_TRUE(std::isfinite(q.scale));
  EXPECT_GT(q.scale, 0.0f);
  for (float v : dequantize_gradient(q)) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_LE(quantization_error(gradient, q),
            static_cast<double>(q.scale) * 0.5 + 1e-9);
}

TEST(CompressionTest, DequantizeIntoMatchesAllocatingOverload) {
  stats::Rng rng(11);
  std::vector<float> gradient(513);
  for (float& g : gradient) g = static_cast<float>(rng.gaussian(0.0, 0.05));
  const QuantizedGradient q = quantize_gradient(gradient);
  const std::vector<float> reference = dequantize_gradient(q);

  std::vector<float> buffer(q.values.size());
  dequantize_into(q, buffer);
  EXPECT_EQ(buffer, reference);

  // Raw-span form (the wire decoder's path) produces the same bits.
  std::vector<float> raw(q.values.size());
  dequantize_into(std::span<const std::int8_t>(q.values), q.scale, raw);
  EXPECT_EQ(raw, reference);

  EXPECT_THROW(dequantize_into(q, std::span<float>(buffer.data(), 3)),
               std::invalid_argument);
}

TEST(CompressionTest, DequantizeIntoTwoWavesZeroGrowth) {
  // The no-allocation drain contract (DESIGN.md §9) the wire decoder
  // relies on: reconstructing into a reused buffer never reallocates.
  stats::Rng rng(12);
  std::vector<float> gradient(1024);
  std::vector<float> buffer(gradient.size());
  const float* const data_before = buffer.data();
  for (int wave = 0; wave < 2; ++wave) {
    for (float& g : gradient) g = static_cast<float>(rng.gaussian(0.0, 0.1));
    const QuantizedGradient q = quantize_gradient(gradient);
    dequantize_into(q, buffer);
    EXPECT_EQ(buffer.data(), data_before) << "wave " << wave << " reallocated";
    EXPECT_EQ(buffer.capacity(), gradient.size());
  }
}

TEST(CompressionTest, EmptyGradientThrows) {
  EXPECT_THROW(quantize_gradient({}), std::invalid_argument);
  QuantizedGradient q;
  q.values.resize(3);
  const std::vector<float> two(2);
  EXPECT_THROW(quantization_error(two, q), std::invalid_argument);
}

TEST(CompressionTest, TrainingSurvivesQuantizedGradients) {
  // End-to-end: SGD on int8-round-tripped gradients still converges —
  // the property that makes compression "pluggable" into FLeet.
  data::SyntheticImageConfig cfg;
  cfg.n_classes = 4;
  cfg.n_train = 400;
  cfg.n_test = 100;
  cfg.height = 12;
  cfg.width = 12;
  cfg.noise_stddev = 0.25f;
  const auto split = data::generate_synthetic_images(cfg);
  auto model = nn::zoo::small_cnn(1, 12, 12, 4, 6);
  model->init(3);
  stats::Rng rng(4);
  std::vector<float> gradient;
  for (int step = 0; step < 400; ++step) {
    const nn::Batch batch = split.train.sample_batch(24, rng);
    model->gradient(batch, gradient);
    const auto restored = dequantize_gradient(quantize_gradient(gradient));
    model->apply_gradient(restored, 0.1f);
  }
  EXPECT_GT(data::evaluate_accuracy(*model, split.test), 0.7);
}

}  // namespace
}  // namespace fleet::net
