#include "fleet/core/online_trainer.hpp"

#include <gtest/gtest.h>

#include "fleet/nn/zoo.hpp"

namespace fleet::core {
namespace {

struct TrainerFixture : ::testing::Test {
  TrainerFixture() {
    data::SyntheticImageConfig cfg;
    cfg.n_classes = 4;
    cfg.n_train = 800;
    cfg.n_test = 200;
    cfg.height = 12;
    cfg.width = 12;
    cfg.noise_stddev = 0.25f;
    split = std::make_unique<data::TrainTestSplit>(
        data::generate_synthetic_images(cfg));
    stats::Rng rng(3);
    users = data::partition_noniid_shards(split->train.labels(), 20, 2, rng);
  }

  std::unique_ptr<nn::Sequential> fresh_model() {
    auto model = nn::zoo::small_cnn(1, 12, 12, 4, 6);
    model->init(7);
    return model;
  }

  ControlledRunConfig base_config() {
    ControlledRunConfig cfg;
    cfg.learning_rate = 0.08f;
    cfg.steps = 800;
    cfg.mini_batch = 20;
    cfg.eval_every = 400;
    cfg.seed = 5;
    return cfg;
  }

  std::unique_ptr<data::TrainTestSplit> split;
  data::Partition users;
};

TEST_F(TrainerFixture, SsgdLearnsTheTask) {
  auto model = fresh_model();
  ControlledRunConfig cfg = base_config();
  cfg.aggregator.scheme = learning::Scheme::kSsgd;
  const auto result =
      run_controlled(*model, split->train, users, split->test, cfg);
  EXPECT_GT(result.final_accuracy, 0.75);
  EXPECT_EQ(result.tasks_executed, cfg.steps);
  EXPECT_EQ(result.tasks_rejected, 0u);
  // Accuracy improves over the run.
  EXPECT_GT(result.curve.back().accuracy, result.curve.front().accuracy);
}

TEST_F(TrainerFixture, CurveHasEvalCadence) {
  auto model = fresh_model();
  ControlledRunConfig cfg = base_config();
  cfg.aggregator.scheme = learning::Scheme::kSsgd;
  cfg.eval_every = 100;
  const auto result =
      run_controlled(*model, split->train, users, split->test, cfg);
  // 0, 100, ..., 800.
  EXPECT_EQ(result.curve.size(), cfg.steps / 100 + 1);
  EXPECT_EQ(result.curve[1].request, 100u);
}

TEST_F(TrainerFixture, StalenessAwareBeatsUnawareUnderStaleness) {
  // The core §3.2 claim in miniature: with significant staleness, AdaSGD
  // keeps learning while staleness-unaware FedAvg degrades or diverges.
  const stats::GaussianDistribution staleness(8.0, 2.0);

  ControlledRunConfig ada_cfg = base_config();
  ada_cfg.steps = 700;
  ada_cfg.aggregator.scheme = learning::Scheme::kAdaSgd;
  ada_cfg.staleness = &staleness;
  auto ada_model = fresh_model();
  const auto ada =
      run_controlled(*ada_model, split->train, users, split->test, ada_cfg);

  ControlledRunConfig fed_cfg = base_config();
  fed_cfg.steps = 700;
  fed_cfg.aggregator.scheme = learning::Scheme::kFedAvg;
  fed_cfg.staleness = &staleness;
  auto fed_model = fresh_model();
  const auto fed =
      run_controlled(*fed_model, split->train, users, split->test, fed_cfg);

  EXPECT_GT(ada.final_accuracy, fed.final_accuracy);
}

TEST_F(TrainerFixture, WeightsLoggedForEveryExecutedTask) {
  auto model = fresh_model();
  ControlledRunConfig cfg = base_config();
  cfg.aggregator.scheme = learning::Scheme::kDynSgd;
  const stats::GaussianDistribution staleness(4.0, 1.0);
  cfg.staleness = &staleness;
  const auto result =
      run_controlled(*model, split->train, users, split->test, cfg);
  EXPECT_EQ(result.weights.size(), result.tasks_executed);
  for (double w : result.weights) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST_F(TrainerFixture, ControllerThresholdRejectsTasks) {
  auto model = fresh_model();
  ControlledRunConfig cfg = base_config();
  cfg.aggregator.scheme = learning::Scheme::kSsgd;
  cfg.batch_mean = 20.0;
  cfg.batch_stddev = 7.0;
  cfg.controller.size_percentile = 40.0;
  cfg.controller.min_history = 20;
  const auto result =
      run_controlled(*model, split->train, users, split->test, cfg);
  EXPECT_GT(result.tasks_rejected, 0u);
  EXPECT_LT(result.tasks_rejected, cfg.steps);
  EXPECT_EQ(result.tasks_executed + result.tasks_rejected, cfg.steps);
}

TEST_F(TrainerFixture, LongtailClassForcesStaleness) {
  auto model = fresh_model();
  ControlledRunConfig cfg = base_config();
  cfg.aggregator.scheme = learning::Scheme::kDynSgd;
  cfg.longtail_class = 0;
  cfg.longtail_staleness = 40.0;
  cfg.eval_class = 0;
  const stats::ConstantDistribution no_staleness(0.0);
  cfg.staleness = &no_staleness;
  const auto result =
      run_controlled(*model, split->train, users, split->test, cfg);
  // Some gradients must have received the longtail dampening: with
  // DynSGD weight = 1/(40+1) ~= 0.024.
  bool found_small = false;
  for (double w : result.weights) {
    if (w < 0.05) found_small = true;
  }
  EXPECT_TRUE(found_small);
  // Class accuracy tracked.
  EXPECT_GE(result.curve.back().class_accuracy, 0.0);
}

TEST_F(TrainerFixture, DpNoiseSlowsButDoesNotBreakTraining) {
  auto noisy_model = fresh_model();
  ControlledRunConfig cfg = base_config();
  cfg.aggregator.scheme = learning::Scheme::kSsgd;
  cfg.dp.clip_norm = 1.0;
  cfg.dp.noise_multiplier = 1.0;
  const auto noisy =
      run_controlled(*noisy_model, split->train, users, split->test, cfg);

  auto clean_model = fresh_model();
  ControlledRunConfig clean_cfg = base_config();
  clean_cfg.aggregator.scheme = learning::Scheme::kSsgd;
  const auto clean = run_controlled(*clean_model, split->train, users,
                                    split->test, clean_cfg);
  EXPECT_GT(noisy.final_accuracy, 0.3);  // still learns
  EXPECT_GE(clean.final_accuracy, noisy.final_accuracy - 0.05);
}

TEST_F(TrainerFixture, LabelPrivacyStillLearns) {
  // DP label release (the §5 extension) perturbs only the similarity
  // signal, not the gradients; training itself must be unaffected.
  auto model = fresh_model();
  ControlledRunConfig cfg = base_config();
  cfg.aggregator.scheme = learning::Scheme::kAdaSgd;
  const stats::GaussianDistribution staleness(4.0, 1.0);
  cfg.staleness = &staleness;
  cfg.label_privacy.epsilon = 1.0;
  const auto result =
      run_controlled(*model, split->train, users, split->test, cfg);
  EXPECT_GT(result.final_accuracy, 0.5);
}

TEST_F(TrainerFixture, AggregationKReducesUpdateCount) {
  auto model = fresh_model();
  ControlledRunConfig cfg = base_config();
  cfg.aggregator.scheme = learning::Scheme::kSsgd;
  cfg.aggregator.aggregation_k = 4;
  const auto result =
      run_controlled(*model, split->train, users, split->test, cfg);
  EXPECT_EQ(result.curve.back().step, cfg.steps / 4);
}

TEST_F(TrainerFixture, RejectsEmptyUserList) {
  auto model = fresh_model();
  data::Partition empty;
  EXPECT_THROW(run_controlled(*model, split->train, empty, split->test,
                              base_config()),
               std::invalid_argument);
}

TEST_F(TrainerFixture, SynchronousMixWeakWorkersHurt) {
  // Fig 3 in miniature: adding batch-1 workers to ten batch-64 workers
  // must not help (and typically hurts) vs strong-only.
  SynchronousMixConfig strong;
  strong.worker_batch_sizes.assign(6, 64);
  strong.steps = 250;
  strong.learning_rate = 0.08f;
  strong.eval_every = 250;
  auto strong_model = fresh_model();
  const auto strong_curve = run_synchronous_mix(*strong_model, split->train,
                                                split->test, strong);

  SynchronousMixConfig mixed = strong;
  mixed.worker_batch_sizes.insert(mixed.worker_batch_sizes.end(), 4, 1);
  auto mixed_model = fresh_model();
  const auto mixed_curve = run_synchronous_mix(*mixed_model, split->train,
                                               split->test, mixed);
  EXPECT_GE(strong_curve.back().accuracy + 0.02,
            mixed_curve.back().accuracy);
}

TEST_F(TrainerFixture, SynchronousMixRejectsEmptyWorkerList) {
  auto model = fresh_model();
  SynchronousMixConfig cfg;
  EXPECT_THROW(run_synchronous_mix(*model, split->train, split->test, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::core
