#include "fleet/core/server.hpp"

#include <gtest/gtest.h>

#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

namespace fleet::core {
namespace {

std::unique_ptr<profiler::Profiler> make_profiler() {
  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(
      device::training_fleet(), profiler::IProf::Config{}.slo, 10));
  return iprof;
}

struct ServerFixture : ::testing::Test {
  ServerFixture()
      : model(nn::zoo::mlp(4, 8, 2)) {
    model->init(1);
    ServerConfig config;
    config.aggregator.scheme = learning::Scheme::kAdaSgd;
    server = std::make_unique<FleetServer>(*model, make_profiler(), config);
    device = std::make_unique<device::DeviceSim>(
        device::spec("Galaxy S7"), 2);
  }

  stats::LabelDistribution labels_01() {
    stats::LabelDistribution ld(2);
    ld.add(0, 5);
    ld.add(1, 5);
    return ld;
  }

  std::unique_ptr<nn::Sequential> model;
  std::unique_ptr<FleetServer> server;
  std::unique_ptr<device::DeviceSim> device;
};

TEST_F(ServerFixture, HandleRequestReturnsModelAndBound) {
  const auto assignment = server->handle_request(device->features(),
                                                 "Galaxy S7", labels_01());
  ASSERT_TRUE(assignment.accepted);
  EXPECT_EQ(assignment.model_version, 0u);
  EXPECT_GE(assignment.mini_batch, 1u);
  EXPECT_EQ(assignment.parameters.size(), model->parameter_count());
}

TEST_F(ServerFixture, GradientAdvancesVersion) {
  const auto assignment = server->handle_request(device->features(),
                                                 "Galaxy S7", labels_01());
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  const auto receipt = server->handle_gradient(
      assignment.model_version, gradient, labels_01(), 10);
  EXPECT_TRUE(receipt.model_updated);
  EXPECT_EQ(receipt.version, 1u);
  EXPECT_EQ(server->version(), 1u);
  EXPECT_DOUBLE_EQ(receipt.staleness, 0.0);
}

TEST_F(ServerFixture, StalenessIsVersionGap) {
  const auto a1 = server->handle_request(device->features(), "Galaxy S7",
                                         labels_01());
  // Three other gradients update the model before a1's gradient lands.
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  for (int i = 0; i < 3; ++i) {
    server->handle_gradient(server->version(), gradient, labels_01(), 10);
  }
  const auto receipt =
      server->handle_gradient(a1.model_version, gradient, labels_01(), 10);
  EXPECT_DOUBLE_EQ(receipt.staleness, 3.0);
}

TEST_F(ServerFixture, GradientActuallyMovesTheModel) {
  const std::vector<float> before = model->parameters();
  std::vector<float> gradient(model->parameter_count(), 1.0f);
  server->handle_gradient(0, gradient, labels_01(), 10);
  const std::vector<float> after = model->parameters();
  double diff = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    diff += std::abs(after[i] - before[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST_F(ServerFixture, FutureVersionGradientThrows) {
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  EXPECT_THROW(server->handle_gradient(99, gradient, labels_01(), 10),
               std::invalid_argument);
}

TEST_F(ServerFixture, ProfilerFeedbackIsAccepted) {
  profiler::Observation ob;
  ob.device_model = "Galaxy S7";
  ob.features = device->features();
  ob.mini_batch = 100;
  ob.time_s = 2.0;
  ob.energy_pct = 0.01;
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  EXPECT_NO_THROW(
      server->handle_gradient(0, gradient, labels_01(), 100, ob));
}

TEST_F(ServerFixture, WeightsReflectStaleness) {
  const auto a = server->handle_request(device->features(), "Galaxy S7",
                                        labels_01());
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  for (int i = 0; i < 5; ++i) {
    server->handle_gradient(server->version(), gradient, labels_01(), 10);
  }
  const auto stale_receipt =
      server->handle_gradient(a.model_version, gradient, labels_01(), 10);
  EXPECT_LT(stale_receipt.weight, 1.0);
}

TEST(ServerTest, NullProfilerThrows) {
  auto model = nn::zoo::mlp(4, 8, 2);
  model->init(1);
  EXPECT_THROW(FleetServer(*model, nullptr, ServerConfig{}),
               std::invalid_argument);
}

TEST(ServerTest, ControllerRejectionPropagates) {
  auto model = nn::zoo::mlp(4, 8, 2);
  model->init(1);
  ServerConfig config;
  config.controller.absolute_min_batch = 1 << 20;  // reject everything
  FleetServer server(*model, make_profiler(), config);
  device::DeviceSim device(device::spec("Xperia E3"), 3);
  stats::LabelDistribution ld(2);
  ld.add(0, 1);
  const auto assignment =
      server.handle_request(device.features(), "Xperia E3", ld);
  EXPECT_FALSE(assignment.accepted);
  EXPECT_FALSE(assignment.reject_reason.empty());
  EXPECT_TRUE(assignment.parameters.empty());
}

}  // namespace
}  // namespace fleet::core
