#include "fleet/core/server.hpp"

#include <gtest/gtest.h>

#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

namespace fleet::core {
namespace {

std::unique_ptr<profiler::Profiler> make_profiler() {
  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(
      device::training_fleet(), profiler::IProf::Config{}.slo, 10));
  return iprof;
}

struct ServerFixture : ::testing::Test {
  ServerFixture()
      : model(nn::zoo::mlp(4, 8, 2)) {
    model->init(1);
    ServerConfig config;
    config.aggregator.scheme = learning::Scheme::kAdaSgd;
    server = std::make_unique<FleetServer>(*model, make_profiler(), config);
    device = std::make_unique<device::DeviceSim>(
        device::spec("Galaxy S7"), 2);
  }

  stats::LabelDistribution labels_01() {
    stats::LabelDistribution ld(2);
    ld.add(0, 5);
    ld.add(1, 5);
    return ld;
  }

  std::unique_ptr<nn::Sequential> model;
  std::unique_ptr<FleetServer> server;
  std::unique_ptr<device::DeviceSim> device;
};

TEST_F(ServerFixture, HandleRequestReturnsModelAndBound) {
  const auto assignment = server->handle_request(device->features(),
                                                 "Galaxy S7", labels_01());
  ASSERT_TRUE(assignment.accepted);
  EXPECT_EQ(assignment.model_version, 0u);
  EXPECT_GE(assignment.mini_batch, 1u);
  ASSERT_NE(assignment.snapshot, nullptr);
  EXPECT_EQ(assignment.parameters().size(), model->parameter_count());
}

TEST_F(ServerFixture, ConcurrentAssignmentsShareOneSnapshotBuffer) {
  // The zero-copy contract: every assignment at the same logical clock
  // value holds the *same* immutable buffer — no per-request copies.
  const auto a1 = server->handle_request(device->features(), "Galaxy S7",
                                         labels_01());
  const auto a2 = server->handle_request(device->features(), "Galaxy S7",
                                         labels_01());
  ASSERT_TRUE(a1.accepted);
  ASSERT_TRUE(a2.accepted);
  EXPECT_EQ(a1.model_version, a2.model_version);
  ASSERT_NE(a1.snapshot, nullptr);
  EXPECT_EQ(a1.snapshot.get(), a2.snapshot.get());
  EXPECT_EQ(a1.parameters().data(), a2.parameters().data());
  // Exactly one buffer was materialized for the two requests.
  EXPECT_EQ(server->store().publishes(), 1u);
}

TEST_F(ServerFixture, SnapshotRefreshesAfterModelUpdate) {
  const auto before = server->handle_request(device->features(), "Galaxy S7",
                                             labels_01());
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  server->handle_gradient(before.model_version, gradient, labels_01(), 10);
  const auto after = server->handle_request(device->features(), "Galaxy S7",
                                            labels_01());
  EXPECT_EQ(after.model_version, 1u);
  ASSERT_NE(after.snapshot, nullptr);
  EXPECT_NE(after.snapshot.get(), before.snapshot.get());
  // The stale handle still pins the old buffer (in-flight tasks keep
  // training against theta^(t_i) even after the ring moves on).
  EXPECT_EQ(before.parameters().size(), model->parameter_count());
}

TEST_F(ServerFixture, StalenessStaysExactBeyondSnapshotWindow) {
  ServerConfig config;
  config.snapshot_window = 4;
  FleetServer small(*model, make_profiler(), config);
  std::vector<float> gradient(model->parameter_count(), 0.0f);
  for (int i = 0; i < 10; ++i) {
    small.handle_gradient(small.version(), gradient, labels_01(), 10);
  }
  ASSERT_EQ(small.version(), 10u);
  // Ring eviction never distorts tau: a task from version 0 is exactly 10
  // updates stale even though its snapshot fell off the 4-deep ring, so
  // Eq. 3 dampens it with Lambda(10), not Lambda(window-1).
  const auto receipt = small.handle_gradient(0, gradient, labels_01(), 10);
  EXPECT_DOUBLE_EQ(receipt.staleness, 10.0);
}

TEST_F(ServerFixture, GradientAdvancesVersion) {
  const auto assignment = server->handle_request(device->features(),
                                                 "Galaxy S7", labels_01());
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  const auto receipt = server->handle_gradient(
      assignment.model_version, gradient, labels_01(), 10);
  EXPECT_TRUE(receipt.model_updated);
  EXPECT_EQ(receipt.version, 1u);
  EXPECT_EQ(server->version(), 1u);
  EXPECT_DOUBLE_EQ(receipt.staleness, 0.0);
}

TEST_F(ServerFixture, StalenessIsVersionGap) {
  const auto a1 = server->handle_request(device->features(), "Galaxy S7",
                                         labels_01());
  // Three other gradients update the model before a1's gradient lands.
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  for (int i = 0; i < 3; ++i) {
    server->handle_gradient(server->version(), gradient, labels_01(), 10);
  }
  const auto receipt =
      server->handle_gradient(a1.model_version, gradient, labels_01(), 10);
  EXPECT_DOUBLE_EQ(receipt.staleness, 3.0);
}

TEST_F(ServerFixture, GradientActuallyMovesTheModel) {
  const std::vector<float> before = model->parameters();
  std::vector<float> gradient(model->parameter_count(), 1.0f);
  server->handle_gradient(0, gradient, labels_01(), 10);
  const std::vector<float> after = model->parameters();
  double diff = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    diff += std::abs(after[i] - before[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST_F(ServerFixture, FutureVersionGradientThrows) {
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  EXPECT_THROW(server->handle_gradient(99, gradient, labels_01(), 10),
               std::invalid_argument);
}

TEST_F(ServerFixture, ProfilerFeedbackIsAccepted) {
  profiler::Observation ob;
  ob.device_model = "Galaxy S7";
  ob.features = device->features();
  ob.mini_batch = 100;
  ob.time_s = 2.0;
  ob.energy_pct = 0.01;
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  EXPECT_NO_THROW(
      server->handle_gradient(0, gradient, labels_01(), 100, ob));
}

TEST_F(ServerFixture, WeightsReflectStaleness) {
  const auto a = server->handle_request(device->features(), "Galaxy S7",
                                        labels_01());
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  for (int i = 0; i < 5; ++i) {
    server->handle_gradient(server->version(), gradient, labels_01(), 10);
  }
  const auto stale_receipt =
      server->handle_gradient(a.model_version, gradient, labels_01(), 10);
  EXPECT_LT(stale_receipt.weight, 1.0);
}

TEST(ServerTest, NullProfilerThrows) {
  auto model = nn::zoo::mlp(4, 8, 2);
  model->init(1);
  EXPECT_THROW(FleetServer(*model, nullptr, ServerConfig{}),
               std::invalid_argument);
}

TEST(ServerTest, ControllerRejectionPropagates) {
  auto model = nn::zoo::mlp(4, 8, 2);
  model->init(1);
  ServerConfig config;
  config.controller.absolute_min_batch = 1 << 20;  // reject everything
  FleetServer server(*model, make_profiler(), config);
  device::DeviceSim device(device::spec("Xperia E3"), 3);
  stats::LabelDistribution ld(2);
  ld.add(0, 1);
  const auto assignment =
      server.handle_request(device.features(), "Xperia E3", ld);
  EXPECT_FALSE(assignment.accepted);
  EXPECT_FALSE(assignment.reject_reason.empty());
  // A rejection ships no snapshot — and materializes none.
  EXPECT_EQ(assignment.snapshot, nullptr);
  EXPECT_TRUE(assignment.parameters().empty());
  EXPECT_EQ(server.store().publishes(), 0u);
}

TEST_F(ServerFixture, RefreshSnapshotServesExternallyLoadedParameters) {
  // Warm-start flow: a request caches theta for version 0, the operator
  // overwrites the model (e.g. nn::load_model), refresh_snapshot()
  // re-publishes so the fleet trains against the new weights.
  const auto before = server->handle_request(device->features(), "Galaxy S7",
                                             labels_01());
  std::vector<float> checkpoint(model->parameter_count(), 0.25f);
  model->load_parameters(checkpoint);
  server->refresh_snapshot();
  const auto after = server->handle_request(device->features(), "Galaxy S7",
                                            labels_01());
  EXPECT_EQ(after.model_version, before.model_version);
  ASSERT_NE(after.snapshot, nullptr);
  EXPECT_FLOAT_EQ(after.parameters()[0], 0.25f);
  // In-flight tasks keep the buffer they were assigned.
  EXPECT_NE(before.parameters()[0], 0.25f);
}

TEST_F(ServerFixture, ReceiptWeightMatchesAggregatorLog) {
  // handle_gradient computes the dampening weight exactly once, inside
  // submit(); the receipt reports that same applied weight.
  std::vector<float> gradient(model->parameter_count(), 0.01f);
  for (int i = 0; i < 4; ++i) {
    server->handle_gradient(server->version(), gradient, labels_01(), 10);
  }
  const auto receipt = server->handle_gradient(0, gradient, labels_01(), 10);
  ASSERT_FALSE(server->aggregator().weight_log().empty());
  EXPECT_DOUBLE_EQ(receipt.weight, server->aggregator().weight_log().back());
}

}  // namespace
}  // namespace fleet::core
