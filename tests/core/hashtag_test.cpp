#include "fleet/core/hashtag_experiment.hpp"

#include <gtest/gtest.h>

namespace fleet::core {
namespace {

data::TweetStreamConfig small_stream_config() {
  data::TweetStreamConfig cfg;
  cfg.days = 4.0;
  cfg.tweets_per_hour = 80.0;
  cfg.n_hashtags = 40;
  cfg.vocab_size = 150;
  cfg.n_users = 20;
  cfg.hashtag_lifetime_hours = 5.0;
  return cfg;
}

HashtagExperimentConfig small_experiment_config() {
  HashtagExperimentConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 12;
  cfg.max_bptt = 8;
  return cfg;
}

TEST(HashtagExperimentTest, ProducesPerChunkScores) {
  data::TweetStream stream(small_stream_config());
  const auto result =
      run_online_vs_standard(stream, small_experiment_config());
  EXPECT_GT(result.chunks.size(), 24u);  // ~ 4 days of hourly chunks
  for (const ChunkScore& c : result.chunks) {
    EXPECT_GE(c.f1_online, 0.0);
    EXPECT_LE(c.f1_online, 1.0);
    EXPECT_GE(c.f1_standard, 0.0);
    EXPECT_LE(c.f1_standard, 1.0);
    EXPECT_GE(c.f1_popular, 0.0);
    EXPECT_LE(c.f1_popular, 1.0);
  }
}

TEST(HashtagExperimentTest, OnlineBeatsStandardOnTemporalData) {
  // The Fig 6 headline: hourly updates outperform daily ones on data whose
  // value decays in hours.
  data::TweetStream stream(small_stream_config());
  const auto result =
      run_online_vs_standard(stream, small_experiment_config());
  EXPECT_GT(result.mean_f1_online, result.mean_f1_standard);
  EXPECT_GT(result.mean_boost, 1.0);
}

TEST(HashtagExperimentTest, ModelsBeatPopularBaseline) {
  data::TweetStream stream(small_stream_config());
  const auto result =
      run_online_vs_standard(stream, small_experiment_config());
  EXPECT_GT(result.mean_f1_online, result.mean_f1_popular);
}

TEST(HashtagExperimentTest, DeterministicAcrossRuns) {
  data::TweetStream stream(small_stream_config());
  const auto a = run_online_vs_standard(stream, small_experiment_config());
  const auto b = run_online_vs_standard(stream, small_experiment_config());
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  EXPECT_DOUBLE_EQ(a.mean_f1_online, b.mean_f1_online);
  EXPECT_DOUBLE_EQ(a.mean_f1_standard, b.mean_f1_standard);
}

TEST(EnergyImpactTest, ReportsPlausibleDailyEnergy) {
  data::TweetStreamConfig cfg = small_stream_config();
  cfg.days = 2.0;
  data::TweetStream stream(cfg);
  const auto impact = measure_energy_impact(stream);
  // Order statistics are ordered.
  EXPECT_LE(impact.median_daily_mwh, impact.avg_daily_mwh * 3.0);
  EXPECT_LE(impact.avg_daily_mwh, impact.p99_daily_mwh + 1e-9);
  EXPECT_LE(impact.p99_daily_mwh, impact.max_daily_mwh + 1e-9);
  // The §3.1 ballpark: single-digit to tens of mWh per user per day.
  EXPECT_GT(impact.avg_daily_mwh, 0.1);
  EXPECT_LT(impact.avg_daily_mwh, 300.0);
  // Pi calibration surfaces in the power numbers.
  EXPECT_NEAR(impact.idle_power_w, 1.9, 0.01);
}

}  // namespace
}  // namespace fleet::core
