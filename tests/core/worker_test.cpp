#include "fleet/core/worker.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"

namespace fleet::core {
namespace {

struct WorkerFixture : ::testing::Test {
  WorkerFixture()
      : split(data::generate_synthetic_images([] {
          data::SyntheticImageConfig cfg;
          cfg.n_classes = 4;
          cfg.n_train = 200;
          cfg.n_test = 10;
          return cfg;
        }())) {}

  FleetWorker make_worker(std::vector<std::size_t> indices) {
    auto replica = nn::zoo::small_cnn(1, 14, 14, 4);
    replica->init(1);
    return FleetWorker(7, std::move(replica), split.train, std::move(indices),
                       device::spec("Galaxy S7"), 3);
  }

  static TaskAssignment assignment_for(nn::TrainableModel& model,
                                       std::size_t batch) {
    TaskAssignment a;
    a.accepted = true;
    a.model_version = 0;
    a.mini_batch = batch;
    a.snapshot = std::make_shared<const std::vector<float>>(model.parameters());
    return a;
  }

  data::TrainTestSplit split;
};

TEST_F(WorkerFixture, LabelInfoMatchesLocalData) {
  // Give the worker only samples of class 0 and 1.
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    if (split.train.label(i) <= 1) indices.push_back(i);
  }
  FleetWorker worker = make_worker(indices);
  const auto ld = worker.label_info();
  EXPECT_GT(ld.count(0), 0u);
  EXPECT_GT(ld.count(1), 0u);
  EXPECT_EQ(ld.count(2), 0u);
  EXPECT_EQ(ld.count(3), 0u);
  EXPECT_EQ(ld.total(), indices.size());
}

TEST_F(WorkerFixture, ExecuteProducesGradientAndCosts) {
  std::vector<std::size_t> indices(100);
  std::iota(indices.begin(), indices.end(), 0);
  FleetWorker worker = make_worker(indices);

  auto reference = nn::zoo::small_cnn(1, 14, 14, 4);
  reference->init(1);
  const auto result = worker.execute(assignment_for(*reference, 32));
  EXPECT_EQ(result.gradient.size(), reference->parameter_count());
  EXPECT_EQ(result.mini_batch, 32u);
  EXPECT_GT(result.loss, 0.0);
  EXPECT_GT(result.execution.time_s, 0.0);
  EXPECT_GT(result.execution.energy_pct, 0.0);
  EXPECT_EQ(result.observation.mini_batch, 32u);
  EXPECT_EQ(result.observation.device_model, "Galaxy S7");
  EXPECT_EQ(result.minibatch_labels.total(), 32u);
  // Gradient is non-trivial.
  double norm = 0.0;
  for (float g : result.gradient) norm += std::abs(g);
  EXPECT_GT(norm, 0.0);
}

TEST_F(WorkerFixture, MiniBatchClampedToLocalData) {
  std::vector<std::size_t> indices(10);
  std::iota(indices.begin(), indices.end(), 0);
  FleetWorker worker = make_worker(indices);
  auto reference = nn::zoo::small_cnn(1, 14, 14, 4);
  reference->init(1);
  const auto result = worker.execute(assignment_for(*reference, 1000));
  EXPECT_EQ(result.mini_batch, 10u);
}

TEST_F(WorkerFixture, RejectedAssignmentThrows) {
  std::vector<std::size_t> indices(10);
  std::iota(indices.begin(), indices.end(), 0);
  FleetWorker worker = make_worker(indices);
  TaskAssignment rejected;
  rejected.accepted = false;
  EXPECT_THROW(worker.execute(rejected), std::invalid_argument);
}

TEST_F(WorkerFixture, AssignmentWithoutSnapshotThrows) {
  std::vector<std::size_t> indices(10);
  std::iota(indices.begin(), indices.end(), 0);
  FleetWorker worker = make_worker(indices);
  TaskAssignment accepted_but_empty;
  accepted_but_empty.accepted = true;
  accepted_but_empty.mini_batch = 4;
  EXPECT_THROW(worker.execute(accepted_but_empty), std::invalid_argument);
}

TEST_F(WorkerFixture, ConstructionRejectsBadArguments) {
  auto replica = nn::zoo::small_cnn(1, 14, 14, 4);
  replica->init(1);
  EXPECT_THROW(FleetWorker(1, nullptr, split.train, {0},
                           device::spec("Galaxy S7"), 1),
               std::invalid_argument);
  auto replica2 = nn::zoo::small_cnn(1, 14, 14, 4);
  replica2->init(1);
  EXPECT_THROW(FleetWorker(1, std::move(replica2), split.train, {},
                           device::spec("Galaxy S7"), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::core
