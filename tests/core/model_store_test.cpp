#include "fleet/core/model_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fleet::core {
namespace {

ModelStore::Buffer buffer_of(float value, std::size_t n = 4) {
  return ModelStore::Buffer(n, value);
}

TEST(ModelStoreTest, RejectsZeroWindow) {
  EXPECT_THROW(ModelStore(0), std::invalid_argument);
}

TEST(ModelStoreTest, PublishThenLookupSharesOneBuffer) {
  ModelStore store(4);
  const auto published = store.publish(0, buffer_of(1.5f));
  const auto a = store.at(0);
  const auto b = store.at(0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), published.get());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_FLOAT_EQ((*a)[0], 1.5f);
  EXPECT_EQ(store.publishes(), 1u);
  EXPECT_EQ(store.hits(), 2u);
}

TEST(ModelStoreTest, MissingVersionIsNull) {
  ModelStore store(4);
  EXPECT_EQ(store.at(0), nullptr);
  EXPECT_EQ(store.resolve(0), nullptr);  // empty store has nothing to clamp to
  store.publish(2, buffer_of(1.0f));
  EXPECT_EQ(store.at(3), nullptr);
  EXPECT_FALSE(store.contains(3));
  EXPECT_TRUE(store.contains(2));
}

TEST(ModelStoreTest, RingEvictsBeyondWindow) {
  ModelStore store(3);
  for (std::size_t v = 0; v <= 5; ++v) {
    store.publish(v, buffer_of(static_cast<float>(v)));
  }
  // Window 3 at latest version 5 retains {3, 4, 5}.
  EXPECT_EQ(store.at(0), nullptr);
  EXPECT_EQ(store.at(2), nullptr);
  for (std::size_t v = 3; v <= 5; ++v) {
    const auto snap = store.at(v);
    ASSERT_NE(snap, nullptr) << "version " << v;
    EXPECT_FLOAT_EQ((*snap)[0], static_cast<float>(v));
  }
  EXPECT_EQ(store.latest_version(), 5u);
}

TEST(ModelStoreTest, ResolveClampsEvictedVersionsToOldestRetained) {
  ModelStore store(3);
  for (std::size_t v = 0; v <= 5; ++v) {
    store.publish(v, buffer_of(static_cast<float>(v)));
  }
  const auto clamped = store.resolve(1);  // evicted -> oldest retained (3)
  ASSERT_NE(clamped, nullptr);
  EXPECT_FLOAT_EQ((*clamped)[0], 3.0f);
  const auto exact = store.resolve(4);
  ASSERT_NE(exact, nullptr);
  EXPECT_FLOAT_EQ((*exact)[0], 4.0f);
}

TEST(ModelStoreTest, EvictedSnapshotSurvivesWhileHandleHeld) {
  ModelStore store(2);
  const auto pinned = store.publish(0, buffer_of(42.0f));
  for (std::size_t v = 1; v <= 4; ++v) {
    store.publish(v, buffer_of(0.0f));
  }
  // Version 0 is long gone from the ring, but the in-flight handle keeps
  // the buffer alive — exactly what a straggling worker needs.
  EXPECT_EQ(store.at(0), nullptr);
  EXPECT_FLOAT_EQ((*pinned)[0], 42.0f);
}

TEST(ModelStoreTest, ClampMirrorsRingRetention) {
  ModelStore store(4);
  EXPECT_EQ(store.clamp(0, 0), 0u);
  EXPECT_EQ(store.clamp(2, 3), 2u);   // within window
  EXPECT_EQ(store.clamp(0, 3), 0u);   // current < window: nothing clamps
  EXPECT_EQ(store.clamp(0, 4), 1u);   // oldest retainable at t=4 is 1
  EXPECT_EQ(store.clamp(5, 100), 97u);
  EXPECT_EQ(store.clamp(98, 100), 98u);
}

TEST(ModelStoreTest, RepublishReplacesSnapshot) {
  ModelStore store(2);
  store.publish(1, buffer_of(1.0f));
  store.publish(1, buffer_of(9.0f));
  const auto snap = store.at(1);
  ASSERT_NE(snap, nullptr);
  EXPECT_FLOAT_EQ((*snap)[0], 9.0f);
}

TEST(ModelStoreTest, ConcurrentReadersSeeConsistentSnapshots) {
  // One publisher walks the clock forward while reader threads acquire and
  // release handles through every lookup path. Each buffer is filled with
  // its own version number, so any torn (version, snapshot) pairing would
  // surface as a mismatched payload. Run under TSan in CI.
  constexpr std::size_t kVersions = 300;
  constexpr std::size_t kReaders = 4;
  ModelStore store(8);
  store.publish(0, buffer_of(0.0f));

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &done] {
      std::size_t probe = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t version = probe++ % kVersions;
        if (const auto exact = store.at(version)) {
          EXPECT_FLOAT_EQ((*exact)[0], static_cast<float>(version));
        }
        if (const auto clamped = store.resolve(version)) {
          // resolve() may clamp to the oldest retained snapshot; whatever
          // record it picked must be internally consistent.
          EXPECT_GE((*clamped)[0], 0.0f);
        }
        store.contains(version);
        store.latest_version();
      }
    });
  }

  for (std::size_t v = 1; v < kVersions; ++v) {
    store.publish(v, buffer_of(static_cast<float>(v)));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(store.latest_version(), kVersions - 1);
  EXPECT_EQ(store.publishes(), kVersions);
}

TEST(ModelStoreTest, HandlesAcquiredConcurrentlyOutliveEviction) {
  // Readers pin snapshots (atomic refcounts) while the publisher churns
  // the ring far past them; the pinned buffers must stay intact.
  ModelStore store(2);
  store.publish(0, buffer_of(5.0f));
  std::vector<std::thread> pinners;
  std::atomic<bool> go{false};
  for (int r = 0; r < 3; ++r) {
    pinners.emplace_back([&store, &go] {
      while (!go.load()) {
      }
      const auto pinned = store.resolve(0);
      ASSERT_NE(pinned, nullptr);
      const float value = (*pinned)[0];
      // Whatever version we pinned, its payload never mutates.
      for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ((*pinned)[0], value);
      }
    });
  }
  go.store(true);
  for (std::size_t v = 1; v <= 50; ++v) {
    store.publish(v, buffer_of(static_cast<float>(v)));
  }
  for (auto& t : pinners) t.join();
}

}  // namespace
}  // namespace fleet::core
