#include "fleet/core/simulation.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

namespace fleet::core {
namespace {

/// Self-contained simulation environment (model + server + workers), so
/// tests can build several identical instances.
struct SimEnv {
  SimEnv()
      : split(data::generate_synthetic_images([] {
          data::SyntheticImageConfig cfg;
          cfg.n_classes = 4;
          cfg.n_train = 400;
          cfg.n_test = 100;
          return cfg;
        }())) {
    model = nn::zoo::small_cnn(1, 14, 14, 4);
    model->init(1);
    auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
    iprof->pretrain(profiler::collect_profile_dataset(
        device::training_fleet(), profiler::IProf::Config{}.slo, 20));
    ServerConfig config;
    config.learning_rate = 0.05f;
    server = std::make_unique<FleetServer>(*model, std::move(iprof), config);

    stats::Rng rng(2);
    const auto partition = data::partition_iid(split.train.size(), 6, rng);
    const auto fleet = device::lab_fleet();
    for (std::size_t u = 0; u < partition.size(); ++u) {
      auto replica = nn::zoo::small_cnn(1, 14, 14, 4);
      replica->init(1);
      workers.emplace_back(static_cast<int>(u), std::move(replica),
                           split.train, partition[u],
                           device::spec(fleet[u % fleet.size()]), 100 + u);
    }
  }

  data::TrainTestSplit split;
  std::unique_ptr<nn::Sequential> model;
  std::unique_ptr<FleetServer> server;
  std::vector<FleetWorker> workers;
};

struct SimulationFixture : ::testing::Test {
  SimEnv env;
};

TEST_F(SimulationFixture, RunsAndUpdatesModel) {
  FleetSimulation::Config cfg;
  cfg.duration_s = 900.0;
  cfg.think_time_mean_s = 20.0;
  FleetSimulation sim(*env.server, env.workers, cfg);
  const auto stats = sim.run();
  EXPECT_GT(stats.requests, 10u);
  EXPECT_GT(stats.gradients, 5u);
  EXPECT_EQ(stats.model_updates, env.server->version());
  EXPECT_GT(stats.model_updates, 0u);
}

TEST_F(SimulationFixture, StalenessEmergesAndIsNonNegative) {
  FleetSimulation::Config cfg;
  cfg.duration_s = 1200.0;
  cfg.think_time_mean_s = 10.0;
  FleetSimulation sim(*env.server, env.workers, cfg);
  const auto stats = sim.run();
  ASSERT_FALSE(stats.staleness_values.empty());
  double max_tau = 0.0;
  for (double tau : stats.staleness_values) {
    EXPECT_GE(tau, 0.0);
    max_tau = std::max(max_tau, tau);
  }
  // With overlapping in-flight tasks some staleness must occur.
  EXPECT_GT(max_tau, 0.0);
}

TEST_F(SimulationFixture, RoundTripsIncludeComputeAndNetwork) {
  FleetSimulation::Config cfg;
  cfg.duration_s = 600.0;
  FleetSimulation sim(*env.server, env.workers, cfg);
  const auto stats = sim.run();
  ASSERT_FALSE(stats.round_trip_s.empty());
  for (std::size_t i = 0; i < stats.round_trip_s.size(); ++i) {
    EXPECT_GT(stats.round_trip_s[i], stats.task_times_s[i]);
  }
}

TEST(SimulationTest, DeterministicGivenSeed) {
  FleetSimulation::Config cfg;
  cfg.duration_s = 300.0;
  SimEnv a, b;
  const auto stats_a = FleetSimulation(*a.server, a.workers, cfg).run();
  const auto stats_b = FleetSimulation(*b.server, b.workers, cfg).run();
  EXPECT_EQ(stats_a.requests, stats_b.requests);
  EXPECT_EQ(stats_a.gradients, stats_b.gradients);
  EXPECT_EQ(stats_a.model_updates, stats_b.model_updates);
}

TEST_F(SimulationFixture, DropoutLosesGradientsButSimulationProgresses) {
  FleetSimulation::Config cfg;
  cfg.duration_s = 1200.0;
  cfg.think_time_mean_s = 10.0;
  cfg.dropout_prob = 0.5;
  FleetSimulation sim(*env.server, env.workers, cfg);
  const auto stats = sim.run();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.gradients, 0u);
  // Dropped gradients were computed (device time charged) but never
  // reached the server.
  EXPECT_EQ(stats.task_times_s.size(), stats.gradients + stats.dropped);
  EXPECT_GT(stats.model_updates, 0u);
}

TEST(SimulationTest, ZeroDropoutReplaysLegacyEventSequence) {
  // Golden counts pinning the event sequence of the pre-dropout-knob
  // simulation (same SimEnv, seed and config as before the knob existed).
  // A disabled knob must consume NO extra RNG draws — if this fails after
  // touching FleetSimulation, the dropout guard (draw only when
  // dropout_prob > 0) regressed and every seeded experiment shifted. If
  // the change to the event loop is intentional, update the numbers
  // deliberately.
  FleetSimulation::Config cfg;
  cfg.duration_s = 300.0;
  cfg.dropout_prob = 0.0;
  SimEnv env;
  const auto stats = FleetSimulation(*env.server, env.workers, cfg).run();
  EXPECT_EQ(stats.requests, 65u);
  EXPECT_EQ(stats.gradients, 61u);
  EXPECT_EQ(stats.model_updates, 61u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(SimulationFixture, RejectsBadConfig) {
  FleetSimulation::Config cfg;
  cfg.duration_s = 0.0;
  EXPECT_THROW(FleetSimulation(*env.server, env.workers, cfg),
               std::invalid_argument);
  std::vector<FleetWorker> empty;
  cfg.duration_s = 10.0;
  EXPECT_THROW(FleetSimulation(*env.server, empty, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::core
