#include "fleet/core/controller.hpp"

#include <gtest/gtest.h>

namespace fleet::core {
namespace {

TEST(ControllerTest, AdmitsEverythingWithDefaultConfig) {
  Controller controller{ControllerConfig{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(controller.admit(1 + static_cast<std::size_t>(i), 0.5).admitted);
  }
  EXPECT_EQ(controller.rejected_count(), 0u);
}

TEST(ControllerTest, EnforcesAbsoluteMinBatch) {
  ControllerConfig cfg;
  cfg.absolute_min_batch = 10;
  Controller controller(cfg);
  EXPECT_FALSE(controller.admit(5, 0.5).admitted);
  EXPECT_TRUE(controller.admit(10, 0.5).admitted);
}

TEST(ControllerTest, SizePercentileRejectsSmallBatches) {
  ControllerConfig cfg;
  cfg.size_percentile = 50.0;
  cfg.min_history = 10;
  Controller controller(cfg);
  // Build history: sizes 1..20.
  for (std::size_t n = 1; n <= 20; ++n) controller.admit(n, 0.5);
  // Median is ~10; a size-2 request must now be rejected, size-19 admitted.
  const auto small = controller.admit(2, 0.5);
  EXPECT_FALSE(small.admitted);
  EXPECT_NE(small.reason.find("size"), std::string::npos);
  EXPECT_TRUE(controller.admit(19, 0.5).admitted);
}

TEST(ControllerTest, SimilarityPercentileRejectsRedundantData) {
  ControllerConfig cfg;
  cfg.similarity_percentile = 50.0;
  cfg.min_history = 10;
  Controller controller(cfg);
  for (int i = 0; i < 20; ++i) {
    controller.admit(100, 0.05 * static_cast<double>(i));
  }
  // Highly similar (redundant) data is dropped; novel data admitted.
  const auto redundant = controller.admit(100, 0.99);
  EXPECT_FALSE(redundant.admitted);
  EXPECT_NE(redundant.reason.find("similarity"), std::string::npos);
  EXPECT_TRUE(controller.admit(100, 0.01).admitted);
}

TEST(ControllerTest, NoThresholdingBeforeMinHistory) {
  ControllerConfig cfg;
  cfg.size_percentile = 99.0;
  cfg.min_history = 50;
  Controller controller(cfg);
  for (int i = 0; i < 49; ++i) {
    EXPECT_TRUE(controller.admit(1, 0.5).admitted);
  }
}

TEST(ControllerTest, CountsAdmittedAndRejected) {
  ControllerConfig cfg;
  cfg.absolute_min_batch = 10;
  Controller controller(cfg);
  controller.admit(5, 0.5);
  controller.admit(15, 0.5);
  controller.admit(3, 0.5);
  EXPECT_EQ(controller.admitted_count(), 1u);
  EXPECT_EQ(controller.rejected_count(), 2u);
}

TEST(ControllerTest, ThresholdAccessorsReflectHistory) {
  ControllerConfig cfg;
  cfg.size_percentile = 50.0;
  cfg.similarity_percentile = 50.0;
  cfg.min_history = 5;
  Controller controller(cfg);
  EXPECT_DOUBLE_EQ(controller.size_threshold(), 0.0);
  EXPECT_DOUBLE_EQ(controller.similarity_threshold(), 1.0);
  for (std::size_t n = 1; n <= 9; ++n) {
    controller.admit(n * 10, static_cast<double>(n) / 10.0);
  }
  EXPECT_NEAR(controller.size_threshold(), 50.0, 1e-9);
  EXPECT_NEAR(controller.similarity_threshold(), 0.5, 1e-9);
}

TEST(ServerConfigTest, ValidateCatchesBadSettings) {
  ServerConfig ok;
  EXPECT_NO_THROW(validate(ok));
  ServerConfig bad = ok;
  bad.learning_rate = 0.0f;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = ok;
  bad.aggregator.aggregation_k = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = ok;
  bad.controller.size_percentile = 150.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = ok;
  bad.slo.latency_s = -1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

}  // namespace
}  // namespace fleet::core
