#include "fleet/core/standard_fl.hpp"

#include <gtest/gtest.h>

#include "fleet/nn/zoo.hpp"

namespace fleet::core {
namespace {

TEST(AvailabilityModelTest, NightWindowWrapsMidnight) {
  AvailabilityModel model;  // 23:00 - 06:00
  EXPECT_TRUE(model.is_night(23.5 * 3600.0));
  EXPECT_TRUE(model.is_night(2.0 * 3600.0));
  EXPECT_FALSE(model.is_night(12.0 * 3600.0));
  EXPECT_FALSE(model.is_night(22.0 * 3600.0));
  // Second day, 01:00.
  EXPECT_TRUE(model.is_night((24.0 + 1.0) * 3600.0));
}

TEST(AvailabilityModelTest, NonWrappingWindow) {
  AvailabilityModel model;
  model.night_start_hour = 1.0;
  model.night_end_hour = 5.0;
  EXPECT_TRUE(model.is_night(3.0 * 3600.0));
  EXPECT_FALSE(model.is_night(23.0 * 3600.0));
}

TEST(AvailabilityModelTest, NightMuchMoreAvailableThanDay) {
  AvailabilityModel model;
  stats::Rng rng(1);
  int night = 0, day = 0;
  for (int i = 0; i < 2000; ++i) {
    if (model.available(1.0 * 3600.0, rng)) ++night;   // 01:00
    if (model.available(13.0 * 3600.0, rng)) ++day;    // 13:00
  }
  EXPECT_GT(night, day * 5);
}

struct StandardFlFixture : ::testing::Test {
  StandardFlFixture() {
    data::SyntheticImageConfig cfg;
    cfg.n_classes = 4;
    cfg.n_train = 800;
    cfg.n_test = 200;
    cfg.height = 12;
    cfg.width = 12;
    cfg.noise_stddev = 0.25f;
    split = std::make_unique<data::TrainTestSplit>(
        data::generate_synthetic_images(cfg));
    stats::Rng rng(2);
    users = data::partition_iid(split->train.size(), 30, rng);
  }

  std::unique_ptr<data::TrainTestSplit> split;
  data::Partition users;
};

TEST_F(StandardFlFixture, NightlyRoundsLearn) {
  auto model = nn::zoo::small_cnn(1, 12, 12, 4, 6);
  model->init(3);
  StandardFlConfig cfg;
  cfg.duration_s = 11.0 * 24.0 * 3600.0;
  // Round at 01:00 each night (offset via period start at t=period).
  cfg.round_period_s = 24.0 * 3600.0 + 3600.0;
  cfg.devices_per_round = 10;
  cfg.local_steps = 25;
  cfg.learning_rate = 0.12f;
  const auto result =
      run_standard_fl(*model, split->train, users, split->test, cfg);
  EXPECT_GT(result.rounds, 3u);
  EXPECT_GT(result.final_accuracy, 0.5);
  EXPECT_GT(result.participating_devices, result.rounds);
}

TEST_F(StandardFlFixture, DaytimeRoundsAreStarved) {
  // Rounds that land mid-day find almost no eligible devices — the §1
  // motivation for Online FL.
  auto model = nn::zoo::small_cnn(1, 12, 12, 4, 6);
  model->init(3);
  StandardFlConfig cfg;
  cfg.duration_s = 6.0 * 24.0 * 3600.0;
  cfg.round_period_s = 24.0 * 3600.0;  // fires at 00:00... offset to noon:
  cfg.availability.night_start_hour = 23.0;
  cfg.availability.night_end_hour = 6.0;
  cfg.availability.day_probability = 0.0;
  // Force rounds at 12:00 by shifting the window definition instead.
  cfg.round_period_s = 12.0 * 3600.0;  // fires 12:00, 24:00, 36:00, ...
  const auto result =
      run_standard_fl(*model, split->train, users, split->test, cfg);
  // Half the rounds (the noon ones) find zero devices.
  EXPECT_GT(result.skipped_rounds, 0u);
}

TEST_F(StandardFlFixture, MoreDevicesPerRoundHelps) {
  StandardFlConfig small_cfg;
  small_cfg.duration_s = 6.0 * 24.0 * 3600.0;
  small_cfg.round_period_s = 24.0 * 3600.0 + 3600.0;
  small_cfg.devices_per_round = 2;
  small_cfg.local_steps = 4;

  StandardFlConfig big_cfg = small_cfg;
  big_cfg.devices_per_round = 15;

  auto model_small = nn::zoo::small_cnn(1, 12, 12, 4, 6);
  model_small->init(3);
  const auto small_result = run_standard_fl(*model_small, split->train, users,
                                            split->test, small_cfg);
  auto model_big = nn::zoo::small_cnn(1, 12, 12, 4, 6);
  model_big->init(3);
  const auto big_result =
      run_standard_fl(*model_big, split->train, users, split->test, big_cfg);
  EXPECT_GE(big_result.final_accuracy + 0.05, small_result.final_accuracy);
}

TEST_F(StandardFlFixture, RejectsBadConfig) {
  auto model = nn::zoo::small_cnn(1, 12, 12, 4, 6);
  model->init(1);
  StandardFlConfig cfg;
  cfg.devices_per_round = 0;
  EXPECT_THROW(
      run_standard_fl(*model, split->train, users, split->test, cfg),
      std::invalid_argument);
  data::Partition empty;
  StandardFlConfig ok;
  EXPECT_THROW(run_standard_fl(*model, split->train, empty, split->test, ok),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::core
