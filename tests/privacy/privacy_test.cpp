#include <gtest/gtest.h>

#include <cmath>

#include "fleet/privacy/gaussian_mechanism.hpp"
#include "fleet/privacy/rdp_accountant.hpp"

namespace fleet::privacy {
namespace {

TEST(ClipL2Test, LeavesSmallGradientsUntouched) {
  std::vector<float> g{0.3f, 0.4f};  // norm 0.5
  const double norm = clip_l2(g, 1.0);
  EXPECT_NEAR(norm, 0.5, 1e-6);
  EXPECT_FLOAT_EQ(g[0], 0.3f);
}

TEST(ClipL2Test, ScalesLargeGradientsToClipNorm) {
  std::vector<float> g{3.0f, 4.0f};  // norm 5
  clip_l2(g, 1.0);
  const double new_norm = std::sqrt(g[0] * g[0] + g[1] * g[1]);
  EXPECT_NEAR(new_norm, 1.0, 1e-6);
  // Direction preserved.
  EXPECT_NEAR(g[1] / g[0], 4.0 / 3.0, 1e-5);
}

TEST(ClipL2Test, RejectsNonPositiveClip) {
  std::vector<float> g{1.0f};
  EXPECT_THROW(clip_l2(g, 0.0), std::invalid_argument);
}

TEST(GaussianMechanismTest, NoiseMatchesConfiguredScale) {
  DpConfig cfg;
  cfg.clip_norm = 1.0;
  cfg.noise_multiplier = 2.0;
  stats::Rng rng(1);
  const std::size_t batch = 10;
  // Zero gradient: output is pure noise with stddev sigma*C/B = 0.2.
  double sum_sq = 0.0;
  const int trials = 200;
  const std::size_t dim = 100;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> g(dim, 0.0f);
    privatize_gradient(g, cfg, batch, rng);
    for (float v : g) sum_sq += static_cast<double>(v) * v;
  }
  const double stddev = std::sqrt(sum_sq / (trials * dim));
  EXPECT_NEAR(stddev, 0.2, 0.01);
}

TEST(GaussianMechanismTest, ZeroNoiseOnlyClips) {
  DpConfig cfg;
  cfg.clip_norm = 1.0;
  cfg.noise_multiplier = 0.0;
  stats::Rng rng(2);
  std::vector<float> g{10.0f, 0.0f};
  privatize_gradient(g, cfg, 10, rng);
  EXPECT_NEAR(g[0], 1.0f, 1e-6);
  EXPECT_EQ(g[1], 0.0f);
}

TEST(GaussianMechanismTest, RejectsEmptyBatch) {
  DpConfig cfg;
  cfg.clip_norm = 1.0;
  stats::Rng rng(3);
  std::vector<float> g{1.0f};
  EXPECT_THROW(privatize_gradient(g, cfg, 0, rng), std::invalid_argument);
}

TEST(RdpAccountantTest, EpsilonGrowsWithSteps) {
  RdpAccountant acc(0.01, 1.0);
  acc.step(100);
  const double e100 = acc.epsilon(1e-5);
  acc.step(900);
  const double e1000 = acc.epsilon(1e-5);
  EXPECT_GT(e1000, e100);
  EXPECT_GT(e100, 0.0);
}

TEST(RdpAccountantTest, MoreNoiseMeansSmallerEpsilon) {
  const double e_low_noise = compute_epsilon(0.01, 0.8, 1000, 1e-5);
  const double e_high_noise = compute_epsilon(0.01, 4.0, 1000, 1e-5);
  EXPECT_LT(e_high_noise, e_low_noise);
}

TEST(RdpAccountantTest, SmallerSamplingRatioIsMorePrivate) {
  const double e_small_q = compute_epsilon(0.001, 1.0, 1000, 1e-5);
  const double e_large_q = compute_epsilon(0.05, 1.0, 1000, 1e-5);
  EXPECT_LT(e_small_q, e_large_q);
}

TEST(RdpAccountantTest, ZeroStepsIsFreePrivacy) {
  RdpAccountant acc(0.01, 1.0);
  EXPECT_DOUBLE_EQ(acc.epsilon(1e-5), 0.0);
}

TEST(RdpAccountantTest, FullBatchReducesToGaussianMechanism) {
  RdpAccountant acc(1.0, 2.0);
  // Plain Gaussian RDP: alpha / (2 sigma^2).
  EXPECT_NEAR(acc.rdp_at_order(8), 8.0 / (2.0 * 4.0), 1e-12);
}

TEST(RdpAccountantTest, KnownBallparkValue) {
  // The canonical DP-SGD setting (Abadi et al.): q=0.01 (lot 600 of 60k),
  // sigma=4, T=10000 steps, delta=1e-5 gives epsilon in the low single
  // digits (TF-privacy reports ~1.25 for the integer-moment bound).
  const double eps = compute_epsilon(600.0 / 60000.0, 4.0, 10000, 1e-5);
  EXPECT_GT(eps, 0.5);
  EXPECT_LT(eps, 3.0);
}

TEST(RdpAccountantTest, MomentsArePositiveAndIncreasing) {
  RdpAccountant acc(0.02, 1.5);
  double prev = 0.0;
  for (int alpha : {2, 4, 8, 16, 32}) {
    const double rdp = acc.rdp_at_order(alpha);
    EXPECT_GE(rdp, prev);
    prev = rdp;
  }
}

TEST(RdpAccountantTest, RejectsBadParameters) {
  EXPECT_THROW(RdpAccountant(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RdpAccountant(1.5, 1.0), std::invalid_argument);
  EXPECT_THROW(RdpAccountant(0.1, 0.0), std::invalid_argument);
  RdpAccountant acc(0.1, 1.0);
  acc.step();
  EXPECT_THROW(acc.epsilon(0.0), std::invalid_argument);
  EXPECT_THROW(acc.epsilon(1.0), std::invalid_argument);
  EXPECT_THROW(acc.rdp_at_order(1), std::invalid_argument);
}

TEST(NoiseForEpsilonTest, InvertsComputeEpsilon) {
  const double q = 100.0 / 60000.0;  // the Fig 11 sampling ratio
  const std::size_t steps = 4000;
  const double delta = 1.0 / (60000.0 * 60000.0);  // delta = 1/N^2 (§3.2)
  for (double target : {1.75, 13.66}) {
    const double sigma = noise_for_epsilon(q, steps, delta, target);
    const double achieved = compute_epsilon(q, sigma, steps, delta);
    EXPECT_LE(achieved, target * 1.02);
    // Not overly conservative either: a slightly smaller sigma must bust
    // the budget.
    EXPECT_GT(compute_epsilon(q, sigma * 0.9, steps, delta), target * 0.95);
  }
}

}  // namespace
}  // namespace fleet::privacy
