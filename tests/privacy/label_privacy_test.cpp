#include "fleet/privacy/label_privacy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fleet::privacy {
namespace {

stats::LabelDistribution make_ld(std::vector<std::size_t> counts) {
  stats::LabelDistribution ld(counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) ld.add(static_cast<int>(c), counts[c]);
  }
  return ld;
}

TEST(LaplaceNoiseTest, ZeroMeanAndCorrectScale) {
  stats::Rng rng(1);
  double sum = 0.0, sum_abs = 0.0;
  const int n = 50000;
  const double scale = 2.0;
  for (int i = 0; i < n; ++i) {
    const double x = laplace_noise(scale, rng);
    sum += x;
    sum_abs += std::abs(x);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.06);
  // E|Laplace(b)| = b.
  EXPECT_NEAR(sum_abs / n, scale, 0.06);
}

TEST(LaplaceNoiseTest, RejectsBadScale) {
  stats::Rng rng(1);
  EXPECT_THROW(laplace_noise(0.0, rng), std::invalid_argument);
}

TEST(LabelPrivacyTest, DisabledIsIdentity) {
  stats::Rng rng(2);
  const auto ld = make_ld({3, 0, 7});
  const auto out =
      privatize_label_distribution(ld, LabelPrivacyConfig{0.0}, rng);
  EXPECT_EQ(out.count(0), 3u);
  EXPECT_EQ(out.count(2), 7u);
}

TEST(LabelPrivacyTest, HighEpsilonPreservesShape) {
  stats::Rng rng(3);
  const auto ld = make_ld({50, 0, 100, 25});
  const auto out =
      privatize_label_distribution(ld, LabelPrivacyConfig{50.0}, rng);
  EXPECT_LT(label_distribution_l1(ld, out), 0.05);
}

TEST(LabelPrivacyTest, LowEpsilonDistortsMore) {
  stats::Rng rng(4);
  const auto ld = make_ld({50, 0, 100, 25});
  double strong_noise = 0.0, weak_noise = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    strong_noise += label_distribution_l1(
        ld, privatize_label_distribution(ld, LabelPrivacyConfig{0.05}, rng));
    weak_noise += label_distribution_l1(
        ld, privatize_label_distribution(ld, LabelPrivacyConfig{5.0}, rng));
  }
  EXPECT_GT(strong_noise, weak_noise * 2.0);
}

TEST(LabelPrivacyTest, OutputIsAlwaysValid) {
  stats::Rng rng(5);
  const auto ld = make_ld({1, 0, 0, 0});
  for (int i = 0; i < 500; ++i) {
    const auto out =
        privatize_label_distribution(ld, LabelPrivacyConfig{0.01}, rng);
    EXPECT_EQ(out.n_classes(), 4u);
    EXPECT_GE(out.total(), 1u);  // never an empty histogram
  }
}

TEST(LabelPrivacyTest, L1RejectsMismatchedClasses) {
  EXPECT_THROW(label_distribution_l1(make_ld({1, 1}), make_ld({1, 1, 1})),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::privacy
