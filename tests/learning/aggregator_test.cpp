#include "fleet/learning/aggregator.hpp"

#include <gtest/gtest.h>

#include <deque>

namespace fleet::learning {
namespace {

// WorkerUpdate carries a *view* of the gradient; this deque owns the
// backing storage for every update a test creates (deques never move
// their elements, so the spans stay valid for the test's lifetime).
std::deque<std::vector<float>>& gradient_storage() {
  static std::deque<std::vector<float>> storage;
  return storage;
}

WorkerUpdate make_update(std::size_t params, float value, double staleness,
                         std::size_t n_classes = 2,
                         std::vector<std::size_t> label_counts = {1, 1}) {
  WorkerUpdate u;
  u.gradient = gradient_storage().emplace_back(params, value);
  u.staleness = staleness;
  u.label_dist = stats::LabelDistribution(n_classes);
  for (std::size_t c = 0; c < label_counts.size(); ++c) {
    if (label_counts[c] > 0) {
      u.label_dist.add(static_cast<int>(c), label_counts[c]);
    }
  }
  u.mini_batch = 10;
  return u;
}

AsyncAggregator::Config config_for(Scheme scheme, std::size_t k = 1) {
  AsyncAggregator::Config cfg;
  cfg.scheme = scheme;
  cfg.aggregation_k = k;
  return cfg;
}

TEST(AggregatorTest, KOfOneEmitsImmediately) {
  AsyncAggregator agg(4, 2, config_for(Scheme::kSsgd));
  const auto out = agg.submit(make_update(4, 1.0f, 0.0));
  ASSERT_TRUE(out.aggregate.has_value());
  EXPECT_EQ(out.aggregate->size(), 4u);
  EXPECT_FLOAT_EQ((*out.aggregate)[0], 1.0f);
  EXPECT_DOUBLE_EQ(out.weight, 1.0);  // SSGD: weight 1 each
}

TEST(AggregatorTest, BuffersUntilK) {
  AsyncAggregator agg(2, 2, config_for(Scheme::kSsgd, 3));
  EXPECT_FALSE(agg.submit(make_update(2, 1.0f, 0.0)).aggregate.has_value());
  EXPECT_FALSE(agg.submit(make_update(2, 1.0f, 0.0)).aggregate.has_value());
  const auto out = agg.submit(make_update(2, 1.0f, 0.0));
  ASSERT_TRUE(out.aggregate.has_value());
  EXPECT_FLOAT_EQ((*out.aggregate)[0], 3.0f);  // SSGD sums with weight 1
}

TEST(AggregatorTest, FedAvgAveragesOverK) {
  AsyncAggregator agg(2, 2, config_for(Scheme::kFedAvg, 4));
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(agg.submit(make_update(2, 2.0f, 5.0)).aggregate.has_value());
  }
  const auto out = agg.submit(make_update(2, 2.0f, 5.0));
  ASSERT_TRUE(out.aggregate.has_value());
  // 4 gradients of 2.0, each weighted 1/4.
  EXPECT_NEAR((*out.aggregate)[0], 2.0f, 1e-6);
  EXPECT_DOUBLE_EQ(out.weight, 0.25);
}

TEST(AggregatorTest, FedAvgIgnoresStaleness) {
  AsyncAggregator agg(2, 2, config_for(Scheme::kFedAvg));
  EXPECT_DOUBLE_EQ(agg.weight_for(make_update(2, 1.0f, 0.0)),
                   agg.weight_for(make_update(2, 1.0f, 100.0)));
}

TEST(AggregatorTest, DynSgdUsesInverseDampening) {
  AsyncAggregator agg(2, 2, config_for(Scheme::kDynSgd));
  EXPECT_DOUBLE_EQ(agg.weight_for(make_update(2, 1.0f, 0.0)), 1.0);
  EXPECT_DOUBLE_EQ(agg.weight_for(make_update(2, 1.0f, 4.0)), 0.2);
}

TEST(AggregatorTest, AdaSgdFallsBackToInverseDuringBootstrap) {
  // §2.3: before staleness history is representative, the dampening factor
  // of DynSGD is used.
  auto cfg = config_for(Scheme::kAdaSgd);
  cfg.similarity_boost = false;
  AsyncAggregator agg(2, 2, cfg);
  EXPECT_DOUBLE_EQ(agg.weight_for(make_update(2, 1.0f, 4.0)), 0.2);
}

TEST(AggregatorTest, AdaSgdSwitchesToExponentialAfterBootstrap) {
  auto cfg = config_for(Scheme::kAdaSgd);
  cfg.similarity_boost = false;
  AsyncAggregator agg(2, 2, cfg);
  // Feed staleness ~ constant 12 until bootstrapped.
  for (int i = 0; i < 40; ++i) agg.submit(make_update(2, 0.0f, 12.0));
  ASSERT_TRUE(agg.staleness().bootstrapped());
  const double tau_thres = agg.staleness().tau_thres();
  ExponentialDampening expected(tau_thres);
  EXPECT_NEAR(agg.weight_for(make_update(2, 1.0f, 8.0)),
              expected.factor(8.0), 1e-9);
}

TEST(AggregatorTest, SimilarityBoostRaisesNovelGradientWeight) {
  auto cfg = config_for(Scheme::kAdaSgd);
  cfg.similarity_boost = true;
  AsyncAggregator agg(2, 4, cfg);
  // Saturate history with classes {0,1} and bootstrap staleness.
  for (int i = 0; i < 40; ++i) {
    agg.submit(make_update(2, 0.0f, 6.0, 4, {5, 5, 0, 0}));
  }
  const double stale = 30.0;
  // Familiar data: heavily dampened.
  const double familiar =
      agg.weight_for(make_update(2, 1.0f, stale, 4, {5, 5, 0, 0}));
  // Novel data (unseen classes): boosted despite the staleness — up to
  // the tau_thres/2 anchor, since a straggler is never restored to full
  // weight (see AsyncAggregator::weight_for).
  const double novel =
      agg.weight_for(make_update(2, 1.0f, stale, 4, {0, 0, 5, 5}));
  EXPECT_GT(novel, familiar * 5.0);
  const double cap =
      ExponentialDampening(agg.tau_thres()).factor(agg.tau_thres() / 2.0);
  EXPECT_DOUBLE_EQ(novel, cap);
}

TEST(AggregatorTest, NonStragglerNovelGradientBoostsToFullWeight) {
  auto cfg = config_for(Scheme::kAdaSgd);
  cfg.similarity_boost = true;
  cfg.fixed_tau_thres = 24.0;
  AsyncAggregator agg(2, 4, cfg);
  for (int i = 0; i < 10; ++i) {
    agg.submit(make_update(2, 0.0f, 4.0, 4, {5, 5, 0, 0}));
  }
  // Fresh-ish (tau <= tau_thres) novel gradient: min(1, Lambda/0) = 1.
  EXPECT_DOUBLE_EQ(
      agg.weight_for(make_update(2, 1.0f, 4.0, 4, {0, 0, 5, 5})), 1.0);
}

TEST(AggregatorTest, FlushEmitsPartialWindow) {
  // Time-window aggregation (§2.3): the timer flushes whatever arrived.
  AsyncAggregator agg(2, 2, config_for(Scheme::kSsgd, 10));
  EXPECT_FALSE(agg.flush().has_value());  // nothing buffered
  agg.submit(make_update(2, 1.0f, 0.0));
  agg.submit(make_update(2, 1.0f, 0.0));
  EXPECT_EQ(agg.pending(), 2u);
  const auto out = agg.flush();
  ASSERT_TRUE(out.has_value());
  EXPECT_FLOAT_EQ((*out)[0], 2.0f);
  EXPECT_EQ(agg.pending(), 0u);
  EXPECT_FALSE(agg.flush().has_value());  // emptied
}

TEST(AggregatorTest, WeightsAreLogged) {
  AsyncAggregator agg(2, 2, config_for(Scheme::kDynSgd));
  agg.submit(make_update(2, 1.0f, 0.0));
  agg.submit(make_update(2, 1.0f, 1.0));
  ASSERT_EQ(agg.weight_log().size(), 2u);
  EXPECT_DOUBLE_EQ(agg.weight_log()[0], 1.0);
  EXPECT_DOUBLE_EQ(agg.weight_log()[1], 0.5);
}

TEST(AggregatorTest, WeightLogCapBoundarySurfacesDrops) {
  // The capped log must not drop entries silently: exactly at the cap
  // nothing is dropped, one past the cap the counter starts, and the
  // logged prefix stays intact.
  auto cfg = config_for(Scheme::kDynSgd);
  cfg.weight_log_capacity = 3;
  AsyncAggregator agg(2, 2, cfg);
  for (int i = 0; i < 3; ++i) {
    agg.submit(make_update(2, 1.0f, 0.0));
  }
  EXPECT_EQ(agg.weight_log().size(), 3u);  // exactly at the cap
  EXPECT_EQ(agg.weights_dropped(), 0u);

  agg.submit(make_update(2, 1.0f, 1.0));  // cap + 1
  EXPECT_EQ(agg.weight_log().size(), 3u);
  EXPECT_EQ(agg.weights_dropped(), 1u);
  // The logged prefix is untouched; only the overflow went uncounted in
  // the log (but not in the counter).
  EXPECT_DOUBLE_EQ(agg.weight_log()[2], 1.0);

  agg.submit(make_update(2, 1.0f, 1.0));
  EXPECT_EQ(agg.weights_dropped(), 2u);
}

TEST(AggregatorTest, PlanSubmitDropsPastTheCapLikeSubmit) {
  auto cfg = config_for(Scheme::kDynSgd);
  cfg.weight_log_capacity = 2;
  AsyncAggregator agg(2, 2, cfg);
  agg.plan_submit(make_update(2, 1.0f, 0.0));
  agg.plan_submit(make_update(2, 1.0f, 1.0));
  EXPECT_EQ(agg.weight_log().size(), 2u);
  EXPECT_EQ(agg.weights_dropped(), 0u);
  agg.plan_submit(make_update(2, 1.0f, 2.0));
  EXPECT_EQ(agg.weight_log().size(), 2u);
  EXPECT_EQ(agg.weights_dropped(), 1u);
}

TEST(AggregatorTest, PlanSubmitMirrorsSubmitBookkeeping) {
  // plan_submit + fold_into + flush_span must be indistinguishable from
  // submit(): same weights, same logs, same round boundaries, and a
  // bitwise-identical aggregate.
  auto cfg = config_for(Scheme::kAdaSgd, /*k=*/2);
  AsyncAggregator sequential(3, 2, cfg);
  AsyncAggregator planned(3, 2, cfg);

  for (int i = 0; i < 6; ++i) {
    const auto update =
        make_update(3, 0.5f + 0.25f * static_cast<float>(i % 3),
                    static_cast<double>(i % 4));
    const auto result = sequential.submit(update);
    const auto plan = planned.plan_submit(update);
    EXPECT_DOUBLE_EQ(plan.weight, result.weight) << "submission " << i;
    EXPECT_EQ(plan.flush, result.aggregate.has_value()) << "submission " << i;
    // Execute the deferred arithmetic over two spans ({0,1} and {2}).
    planned.fold_into(0, 2, plan.weight, update.gradient);
    planned.fold_into(2, 3, plan.weight, update.gradient);
    if (plan.flush) {
      const auto lo = planned.flush_span(0, 2);
      const auto hi = planned.flush_span(2, 3);
      ASSERT_TRUE(result.aggregate.has_value());
      EXPECT_EQ((*result.aggregate)[0], lo[0]);
      EXPECT_EQ((*result.aggregate)[1], lo[1]);
      EXPECT_EQ((*result.aggregate)[2], hi[0]);
    }
  }
  EXPECT_EQ(planned.weight_log(), sequential.weight_log());
  EXPECT_EQ(planned.pending(), sequential.pending());
}

TEST(AggregatorTest, FoldIntoAndFlushSpanValidateRanges) {
  AsyncAggregator agg(4, 2, config_for(Scheme::kSsgd));
  const auto update = make_update(4, 1.0f, 0.0);
  EXPECT_THROW(agg.fold_into(2, 1, 1.0, update.gradient),
               std::invalid_argument);
  EXPECT_THROW(agg.fold_into(0, 5, 1.0, update.gradient),
               std::invalid_argument);
  EXPECT_THROW(agg.fold_into(0, 2, 1.0, std::vector<float>(3, 0.0f)),
               std::invalid_argument);
  EXPECT_THROW(agg.flush_span(3, 2), std::invalid_argument);
  EXPECT_THROW(agg.flush_span(0, 5), std::invalid_argument);
}

TEST(AggregatorTest, WeightNeverExceedsOne) {
  auto cfg = config_for(Scheme::kAdaSgd);
  AsyncAggregator agg(2, 2, cfg);
  for (int i = 0; i < 100; ++i) {
    const auto u = make_update(2, 1.0f, static_cast<double>(i % 20));
    EXPECT_LE(agg.weight_for(u), 1.0);
    EXPECT_GT(agg.weight_for(u), 0.0);
    agg.submit(u);
  }
}

TEST(AggregatorTest, FixedTauThresOverridesPercentile) {
  auto cfg = config_for(Scheme::kAdaSgd);
  cfg.similarity_boost = false;
  cfg.fixed_tau_thres = 12.0;
  AsyncAggregator agg(2, 2, cfg);
  // Even with zero history the dampening must already be the exponential
  // anchored at tau_thres = 12 (no bootstrap fallback when pinned).
  ExponentialDampening expected(12.0);
  EXPECT_NEAR(agg.weight_for(make_update(2, 1.0f, 8.0)), expected.factor(8.0),
              1e-12);
  EXPECT_DOUBLE_EQ(agg.tau_thres(), 12.0);
  // Feeding large staleness values must not move the pinned threshold.
  for (int i = 0; i < 100; ++i) agg.submit(make_update(2, 0.0f, 48.0));
  EXPECT_DOUBLE_EQ(agg.tau_thres(), 12.0);
}

TEST(AggregatorTest, StragglersDoNotEnterGlobalLabelDistribution) {
  auto cfg = config_for(Scheme::kAdaSgd);
  cfg.fixed_tau_thres = 10.0;
  AsyncAggregator agg(2, 4, cfg);
  // Fresh gradients of classes {0,1} populate LD_global...
  for (int i = 0; i < 20; ++i) {
    agg.submit(make_update(2, 0.0f, 2.0, 4, {5, 5, 0, 0}));
  }
  // ...straggler gradients of class 3 (tau > tau_thres) must not.
  for (int i = 0; i < 20; ++i) {
    agg.submit(make_update(2, 0.0f, 30.0, 4, {0, 0, 0, 10}));
  }
  EXPECT_DOUBLE_EQ(agg.similarity().global_probability(3), 0.0);
  // Hence class-3 tasks stay boosted (to the straggler cap) despite
  // tau = 30 — orders of magnitude above the raw Lambda(30).
  const double w =
      agg.weight_for(make_update(2, 1.0f, 30.0, 4, {0, 0, 0, 10}));
  EXPECT_GT(w, 0.1);
  EXPECT_GT(w, ExponentialDampening(10.0).factor(30.0) * 100.0);
}

TEST(AggregatorTest, SubmitReportsTheAppliedWeight) {
  // The receipt path reads the weight off the submit result — assert it is
  // exactly what the pure query would have computed (one computation, two
  // consumers).
  AsyncAggregator agg(2, 2, config_for(Scheme::kDynSgd, 100));
  for (double tau : {0.0, 1.0, 4.0, 9.0}) {
    const auto u = make_update(2, 1.0f, tau);
    const double expected = agg.weight_for(u);
    EXPECT_DOUBLE_EQ(agg.submit(u).weight, expected);
  }
}

TEST(AggregatorTest, TimeWindowDeploymentAggregatesAcrossFlushes) {
  // §2.3 time-window mode: K is effectively infinite and a timer calls
  // flush(). Consecutive windows must be independent sums.
  AsyncAggregator agg(2, 2, config_for(Scheme::kSsgd, 1000));
  for (int i = 0; i < 3; ++i) agg.submit(make_update(2, 1.0f, 0.0));
  const auto first = agg.flush();
  ASSERT_TRUE(first.has_value());
  EXPECT_FLOAT_EQ((*first)[0], 3.0f);

  for (int i = 0; i < 2; ++i) agg.submit(make_update(2, 2.0f, 0.0));
  const auto second = agg.flush();
  ASSERT_TRUE(second.has_value());
  EXPECT_FLOAT_EQ((*second)[0], 4.0f);  // not 3 + 4: windows are disjoint
  EXPECT_EQ(agg.pending(), 0u);
}

TEST(AggregatorTest, FlushedViewStaysValidUntilNextFlush) {
  // The zero-copy contract of the double buffer: the span a flush returns
  // must survive subsequent submits (which write the *other* buffer).
  AsyncAggregator agg(2, 2, config_for(Scheme::kSsgd, 10));
  agg.submit(make_update(2, 5.0f, 0.0));
  const auto out = agg.flush();
  ASSERT_TRUE(out.has_value());
  agg.submit(make_update(2, 7.0f, 0.0));  // accumulates into the spare
  EXPECT_FLOAT_EQ((*out)[0], 5.0f);       // flushed view untouched
}

TEST(AggregatorTest, RejectsBadInput) {
  EXPECT_THROW(AsyncAggregator(0, 2, config_for(Scheme::kSsgd)),
               std::invalid_argument);
  EXPECT_THROW(AsyncAggregator(2, 2, config_for(Scheme::kSsgd, 0)),
               std::invalid_argument);
  AsyncAggregator agg(4, 2, config_for(Scheme::kSsgd));
  EXPECT_THROW(agg.submit(make_update(2, 1.0f, 0.0)), std::invalid_argument);
}

}  // namespace
}  // namespace fleet::learning
