#include "fleet/learning/similarity.hpp"

#include <gtest/gtest.h>

namespace fleet::learning {
namespace {

stats::LabelDistribution make_ld(std::size_t classes,
                                 std::vector<std::size_t> counts) {
  stats::LabelDistribution ld(classes);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) ld.add(static_cast<int>(c), counts[c]);
  }
  return ld;
}

TEST(SimilarityTrackerTest, EverythingIsNovelAtStart) {
  SimilarityTracker tracker(4);
  EXPECT_DOUBLE_EQ(tracker.similarity(make_ld(4, {1, 1, 1, 1})), 0.0);
}

TEST(SimilarityTrackerTest, IdenticalDistributionScoresOne) {
  SimilarityTracker tracker(4);
  tracker.record_used(make_ld(4, {5, 5, 5, 5}));
  EXPECT_NEAR(tracker.similarity(make_ld(4, {2, 2, 2, 2})), 1.0, 1e-12);
}

TEST(SimilarityTrackerTest, UnseenLabelScoresLow) {
  // §2.3's "very rare animal" example: data for a label the global
  // distribution has never seen gets similarity < 1 (here 0: disjoint).
  SimilarityTracker tracker(4);
  tracker.record_used(make_ld(4, {10, 10, 0, 0}));
  EXPECT_DOUBLE_EQ(tracker.similarity(make_ld(4, {0, 0, 5, 0})), 0.0);
  EXPECT_LT(tracker.similarity(make_ld(4, {1, 0, 5, 0})), 0.5);
}

TEST(SimilarityTrackerTest, GlobalDistributionAccumulates) {
  SimilarityTracker tracker(3);
  tracker.record_used(make_ld(3, {10, 0, 0}));
  const double before = tracker.similarity(make_ld(3, {0, 10, 0}));
  tracker.record_used(make_ld(3, {0, 10, 0}));
  const double after = tracker.similarity(make_ld(3, {0, 10, 0}));
  EXPECT_GT(after, before);
  EXPECT_DOUBLE_EQ(tracker.total_weight(), 20.0);
  EXPECT_DOUBLE_EQ(tracker.global_probability(0), 0.5);
}

TEST(SimilarityTrackerTest, NullifiedGradientsStayNovel) {
  // A gradient applied with ~zero weight must not mark its labels as seen
  // — the property Fig 9(a)'s straggler recovery depends on.
  SimilarityTracker tracker(3);
  tracker.record_used(make_ld(3, {10, 0, 0}), 1.0);
  tracker.record_used(make_ld(3, {0, 0, 10}), 1e-7);  // nullified straggler
  EXPECT_LT(tracker.similarity(make_ld(3, {0, 0, 10})), 0.01);
  // Once applied with real weight, the class becomes familiar.
  tracker.record_used(make_ld(3, {0, 0, 10}), 1.0);
  EXPECT_GT(tracker.similarity(make_ld(3, {0, 0, 10})), 0.5);
}

TEST(SimilarityTrackerTest, RejectsNegativeWeight) {
  SimilarityTracker tracker(2);
  EXPECT_THROW(tracker.record_used(make_ld(2, {1, 1}), -1.0),
               std::invalid_argument);
}

TEST(SimilarityTrackerTest, SimilarityIsBounded) {
  SimilarityTracker tracker(5);
  tracker.record_used(make_ld(5, {3, 1, 4, 1, 5}));
  for (std::size_t c = 0; c < 5; ++c) {
    std::vector<std::size_t> counts(5, 0);
    counts[c] = 7;
    const double sim = tracker.similarity(make_ld(5, counts));
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

TEST(SimilarityTrackerTest, ClassMismatchThrows) {
  SimilarityTracker tracker(3);
  EXPECT_THROW(tracker.similarity(make_ld(4, {1, 1, 1, 1})),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::learning
