#include "fleet/learning/dampening.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fleet::learning {
namespace {

TEST(InverseDampeningTest, MatchesDynSgdFormula) {
  InverseDampening inv;
  EXPECT_DOUBLE_EQ(inv.factor(0.0), 1.0);
  EXPECT_DOUBLE_EQ(inv.factor(1.0), 0.5);
  EXPECT_DOUBLE_EQ(inv.factor(9.0), 0.1);
}

TEST(ExponentialDampeningTest, FreshGradientHasFullWeight) {
  ExponentialDampening exp_damp(24.0);
  EXPECT_DOUBLE_EQ(exp_damp.factor(0.0), 1.0);
}

TEST(ExponentialDampeningTest, IntersectsInverseAtHalfTauThres) {
  // The defining property of beta (§2.3): the exponential curve meets
  // DynSGD's inverse curve exactly at tau_thres / 2.
  for (double tau_thres : {6.0, 12.0, 24.0, 48.0, 100.0}) {
    ExponentialDampening exp_damp(tau_thres);
    InverseDampening inv;
    const double half = tau_thres / 2.0;
    EXPECT_NEAR(exp_damp.factor(half), inv.factor(half), 1e-12)
        << "tau_thres=" << tau_thres;
  }
}

TEST(ExponentialDampeningTest, AboveInverseBeforeBelowAfter) {
  // Fig 5's geometry: AdaSGD dampens *less* than DynSGD for fresh-ish
  // gradients (tau < tau_thres/2) and *more* for very stale ones.
  ExponentialDampening exp_damp(24.0);
  InverseDampening inv;
  for (double tau : {1.0, 4.0, 8.0, 11.0}) {
    EXPECT_GT(exp_damp.factor(tau), inv.factor(tau)) << "tau=" << tau;
  }
  for (double tau : {13.0, 20.0, 30.0, 48.0}) {
    EXPECT_LT(exp_damp.factor(tau), inv.factor(tau)) << "tau=" << tau;
  }
}

TEST(ExponentialDampeningTest, RejectsInvalidInput) {
  EXPECT_THROW(ExponentialDampening(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialDampening(-5.0), std::invalid_argument);
  ExponentialDampening d(10.0);
  EXPECT_THROW(d.factor(-1.0), std::invalid_argument);
  InverseDampening inv;
  EXPECT_THROW(inv.factor(-0.5), std::invalid_argument);
}

TEST(NoDampeningTest, AlwaysOne) {
  NoDampening none;
  EXPECT_DOUBLE_EQ(none.factor(0.0), 1.0);
  EXPECT_DOUBLE_EQ(none.factor(1000.0), 1.0);
}

TEST(SchemeNameTest, AllSchemesNamed) {
  EXPECT_EQ(scheme_name(Scheme::kAdaSgd), "AdaSGD");
  EXPECT_EQ(scheme_name(Scheme::kDynSgd), "DynSGD");
  EXPECT_EQ(scheme_name(Scheme::kFedAvg), "FedAvg");
  EXPECT_EQ(scheme_name(Scheme::kSsgd), "SSGD");
}

/// Property sweep over tau_thres values (Fig 5 invariants for any
/// operating point).
class DampeningPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(DampeningPropertyTest, MonotoneDecreasingAndBounded) {
  ExponentialDampening exp_damp(GetParam());
  InverseDampening inv;
  double prev_exp = 2.0, prev_inv = 2.0;
  for (double tau = 0.0; tau <= 3.0 * GetParam(); tau += 0.5) {
    const double e = exp_damp.factor(tau);
    const double i = inv.factor(tau);
    EXPECT_GT(e, 0.0);
    EXPECT_LE(e, 1.0);
    EXPECT_GT(i, 0.0);
    EXPECT_LE(i, 1.0);
    EXPECT_LT(e, prev_exp);
    EXPECT_LT(i, prev_inv);
    prev_exp = e;
    prev_inv = i;
  }
}

TEST_P(DampeningPropertyTest, BetaSolvesItsDefiningEquation) {
  const double tau_thres = GetParam();
  ExponentialDampening d(tau_thres);
  const double half = tau_thres / 2.0;
  // exp(-beta * half) == 1 / (half + 1)
  EXPECT_NEAR(std::exp(-d.beta() * half), 1.0 / (half + 1.0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(TauThresSweep, DampeningPropertyTest,
                         ::testing::Values(2.0, 6.0, 12.0, 24.0, 48.0, 96.0));

}  // namespace
}  // namespace fleet::learning
