#include "fleet/learning/staleness.hpp"

#include <gtest/gtest.h>

#include "fleet/stats/rng.hpp"

namespace fleet::learning {
namespace {

TEST(StalenessTrackerTest, FloorBeforeObservations) {
  StalenessTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.tau_thres(), 2.0);
  EXPECT_FALSE(tracker.bootstrapped());
}

TEST(StalenessTrackerTest, BootstrapsAfterEnoughObservations) {
  StalenessTracker tracker(99.7, /*bootstrap_count=*/10);
  for (int i = 0; i < 9; ++i) tracker.observe(5.0);
  EXPECT_FALSE(tracker.bootstrapped());
  tracker.observe(5.0);
  EXPECT_TRUE(tracker.bootstrapped());
}

TEST(StalenessTrackerTest, TauThresIsPercentileOfObservations) {
  // s = 99.7% with staleness ~ N(mu, sigma) gives tau_thres close to
  // mu + 3 sigma — exactly how §3.2 configures D1/D2.
  StalenessTracker tracker(99.7);
  stats::Rng rng(1);
  for (int i = 0; i < 4000; ++i) {
    tracker.observe(std::max(0.0, rng.gaussian(12.0, 4.0)));
  }
  EXPECT_NEAR(tracker.tau_thres(), 12.0 + 3.0 * 4.0, 2.5);
}

TEST(StalenessTrackerTest, LowerPercentileGivesSmallerThreshold) {
  StalenessTracker p90(90.0), p99(99.0);
  stats::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double tau = std::max(0.0, rng.gaussian(10.0, 3.0));
    p90.observe(tau);
    p99.observe(tau);
  }
  EXPECT_LT(p90.tau_thres(), p99.tau_thres());
}

TEST(StalenessTrackerTest, RejectsBadInput) {
  EXPECT_THROW(StalenessTracker(0.0), std::invalid_argument);
  EXPECT_THROW(StalenessTracker(101.0), std::invalid_argument);
  StalenessTracker ok;
  EXPECT_THROW(ok.observe(-1.0), std::invalid_argument);
}

TEST(StalenessTrackerTest, ThresholdNeverBelowFloor) {
  StalenessTracker tracker;
  for (int i = 0; i < 100; ++i) tracker.observe(0.0);
  EXPECT_DOUBLE_EQ(tracker.tau_thres(), 2.0);
}

}  // namespace
}  // namespace fleet::learning
