#include "fleet/runtime/adaptive_batcher.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace fleet::runtime {
namespace {

AdaptiveBatchConfig small_config() {
  AdaptiveBatchConfig config;
  config.enabled = true;
  config.min_batch = 8;
  config.max_batch = 32;
  config.window = 2;
  config.hysteresis = 2;
  // Defaults: widen when peak > 1.0x limit; narrow when peak < 0.25x limit
  // and mean fill < 0.5x limit.
  return config;
}

/// Feed one full control window of identical (taken, depth_peak) drains.
void feed_window(AdaptiveBatcher& batcher, std::size_t taken,
                 std::size_t depth_peak, std::size_t window = 2) {
  for (std::size_t d = 0; d < window; ++d) batcher.observe(taken, depth_peak);
}

TEST(AdaptiveBatcherTest, InitialLimitClampsIntoConfiguredRange) {
  const AdaptiveBatchConfig config = small_config();
  EXPECT_EQ(AdaptiveBatcher(config, 1000).limit(), 32u);
  EXPECT_EQ(AdaptiveBatcher(config, 0).limit(), 8u);
  EXPECT_EQ(AdaptiveBatcher(config, 16).limit(), 16u);
}

TEST(AdaptiveBatcherTest, WidensAfterHysteresisWindowsOfBacklog) {
  AdaptiveBatcher batcher(small_config(), 8);

  // One overloaded window is not enough: hysteresis is 2.
  feed_window(batcher, 8, 16);
  EXPECT_EQ(batcher.limit(), 8u);
  EXPECT_EQ(batcher.stats().widenings, 0u);

  // The second consecutive widen vote doubles the limit.
  feed_window(batcher, 8, 16);
  EXPECT_EQ(batcher.limit(), 16u);
  EXPECT_EQ(batcher.stats().widenings, 1u);

  // Still overloaded relative to the new limit: doubles again, to the cap.
  feed_window(batcher, 16, 64);
  feed_window(batcher, 16, 64);
  EXPECT_EQ(batcher.limit(), 32u);
  EXPECT_EQ(batcher.stats().widenings, 2u);

  // At max_batch further widen votes are no-ops (and not counted).
  feed_window(batcher, 32, 128);
  feed_window(batcher, 32, 128);
  EXPECT_EQ(batcher.limit(), 32u);
  EXPECT_EQ(batcher.stats().widenings, 2u);
}

TEST(AdaptiveBatcherTest, NarrowsWhenQueueStaysShallowAndBatchesRunEmpty) {
  AdaptiveBatcher batcher(small_config(), 32);

  // Idle host: zero depth peaks and near-empty batches.
  feed_window(batcher, 1, 0);
  EXPECT_EQ(batcher.limit(), 32u);
  feed_window(batcher, 1, 0);
  EXPECT_EQ(batcher.limit(), 16u);
  EXPECT_EQ(batcher.stats().narrowings, 1u);

  feed_window(batcher, 1, 0);
  feed_window(batcher, 1, 0);
  EXPECT_EQ(batcher.limit(), 8u);

  // Floor: min_batch holds.
  feed_window(batcher, 0, 0);
  feed_window(batcher, 0, 0);
  EXPECT_EQ(batcher.limit(), 8u);
  EXPECT_EQ(batcher.stats().narrowings, 2u);
}

TEST(AdaptiveBatcherTest, ShallowQueueWithFullBatchesDoesNotNarrow) {
  // Depth peak under the narrow threshold, but every drain comes back
  // full — steady drip exactly keeping up. Narrowing would add latency.
  AdaptiveBatcher batcher(small_config(), 32);
  for (int w = 0; w < 6; ++w) feed_window(batcher, 32, 4);
  EXPECT_EQ(batcher.limit(), 32u);
  EXPECT_EQ(batcher.stats().narrowings, 0u);
}

TEST(AdaptiveBatcherTest, HoldWindowResetsTheStreak) {
  AdaptiveBatcher batcher(small_config(), 8);

  feed_window(batcher, 8, 16);   // widen vote (streak 1)
  feed_window(batcher, 8, 8);    // peak == limit: hold, streak resets
  feed_window(batcher, 8, 16);   // widen vote (streak 1 again)
  EXPECT_EQ(batcher.limit(), 8u);
  EXPECT_EQ(batcher.stats().widenings, 0u);

  // An opposing vote also restarts the streak in the other direction.
  feed_window(batcher, 0, 0);    // narrow vote (streak -1)
  feed_window(batcher, 8, 16);   // widen vote (streak flips to +1)
  feed_window(batcher, 8, 16);   // second widen in a row: acts
  EXPECT_EQ(batcher.limit(), 16u);
}

TEST(AdaptiveBatcherTest, CountsWindowsAndExposesStats) {
  AdaptiveBatcher batcher(small_config(), 8);
  feed_window(batcher, 8, 16);
  feed_window(batcher, 8, 16);
  feed_window(batcher, 0, 0);
  const AdaptiveBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, 3u);
  EXPECT_EQ(stats.limit, 16u);
  EXPECT_EQ(stats.widenings, 1u);
  EXPECT_EQ(stats.narrowings, 0u);
}

TEST(AdaptiveBatcherTest, ScheduleIsAPureFunctionOfTheCounterStream) {
  // Counters-not-clocks (§11): the same observation sequence must produce
  // the same limit trace every time — nothing time-dependent feeds the
  // controller. This is what lets the determinism matrix pin the adaptive
  // schedule.
  const std::vector<std::pair<std::size_t, std::size_t>> stream = {
      {8, 16}, {8, 12}, {8, 20}, {8, 9},  {4, 2}, {1, 0},
      {0, 0},  {0, 0},  {2, 1},  {8, 40}, {8, 33}, {8, 17},
  };
  std::vector<std::size_t> trace_a;
  std::vector<std::size_t> trace_b;
  for (std::vector<std::size_t>* trace : {&trace_a, &trace_b}) {
    AdaptiveBatcher batcher(small_config(), 8);
    for (const auto& [taken, peak] : stream) {
      batcher.observe(taken, peak);
      trace->push_back(batcher.limit());
    }
  }
  EXPECT_EQ(trace_a, trace_b);
}

}  // namespace
}  // namespace fleet::runtime
