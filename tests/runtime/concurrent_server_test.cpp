#include "fleet/runtime/concurrent_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/topology.hpp"

namespace fleet::runtime {
namespace {

using test::pretrained_iprof;

/// Tiny model + server pair; K = 1 so every gradient updates the model.
struct ServerEnv {
  explicit ServerEnv(const RuntimeConfig& runtime = {}) {
    model = nn::zoo::mlp(8, 4, 3);
    model->init(7);
    core::ServerConfig config;
    config.learning_rate = 0.1f;
    server = std::make_unique<ConcurrentFleetServer>(*model, pretrained_iprof(),
                                                     config, runtime);
  }

  GradientJob unit_job(std::size_t task_version) const {
    GradientJob job;
    job.task_version = task_version;
    job.gradient.assign(model->parameter_count(), 0.01f);
    job.label_dist = stats::LabelDistribution(model->n_classes());
    job.label_dist.add(0);
    job.mini_batch = 4;
    return job;
  }

  /// A job with parameter-index-varied gradient values, so fold-order or
  /// span-partition mistakes change the model instead of cancelling out.
  GradientJob varied_job(std::size_t task_version, std::size_t salt) const {
    GradientJob job = unit_job(task_version);
    for (std::size_t i = 0; i < job.gradient.size(); ++i) {
      job.gradient[i] =
          0.001f * static_cast<float>((i * 7 + salt * 13) % 23) - 0.01f;
    }
    job.label_dist = stats::LabelDistribution(model->n_classes());
    job.label_dist.add(static_cast<int>(salt % model->n_classes()), 2);
    return job;
  }

  std::unique_ptr<nn::Sequential> model;
  std::unique_ptr<ConcurrentFleetServer> server;
};

TEST(ConcurrentServerTest, PublishesVersionZeroSnapshotAtConstruction) {
  ServerEnv env;
  const auto record = env.server->current();
  EXPECT_EQ(record.version, 0u);
  ASSERT_NE(record.snapshot, nullptr);
  EXPECT_EQ(record.snapshot->size(), env.model->parameter_count());
  env.server->stop();
}

TEST(ConcurrentServerTest, ProcessesSubmittedGradientsAndAdvancesClock) {
  ServerEnv env;
  for (std::size_t i = 0; i < 3; ++i) {
    GradientJob job = env.unit_job(env.server->version());
    const auto receipt = env.server->try_submit(job);
    ASSERT_TRUE(receipt.accepted);
    env.server->drain();
  }
  EXPECT_EQ(env.server->version(), 3u);
  const auto stats = env.server->stats();
  EXPECT_EQ(stats.processed, 3u);
  EXPECT_EQ(stats.model_updates, 3u);
  EXPECT_EQ(stats.backpressure_rejects, 0u);
  // Every drain-separated submission saw the fresh clock: zero staleness.
  for (double tau : stats.staleness_values) EXPECT_EQ(tau, 0.0);
  env.server->stop();
}

TEST(ConcurrentServerTest, QueueBackpressureSurfacesAsRejectedReceipt) {
  RuntimeConfig runtime;
  runtime.queue_capacity = 2;
  runtime.queue_shards = 1;
  runtime.start_paused = true;  // stage a backlog deterministically
  ServerEnv env(runtime);

  GradientJob a = env.unit_job(0);
  GradientJob b = env.unit_job(0);
  GradientJob c = env.unit_job(0);
  EXPECT_TRUE(env.server->try_submit(a).accepted);
  EXPECT_TRUE(env.server->try_submit(b).accepted);
  const auto rejected = env.server->try_submit(c);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_FALSE(rejected.reject_reason.empty());
  EXPECT_TRUE(rejected.retryable);  // backpressure is transient
  // The rejected job is intact for a retry.
  EXPECT_EQ(c.gradient.size(), env.model->parameter_count());

  env.server->resume();
  env.server->drain();
  const auto stats = env.server->stats();
  EXPECT_EQ(stats.processed, 2u);
  EXPECT_EQ(stats.backpressure_rejects, 1u);

  // After the backlog cleared the retry goes through.
  EXPECT_TRUE(env.server->try_submit(c).accepted);
  env.server->drain();
  EXPECT_EQ(env.server->stats().processed, 3u);
  env.server->stop();
}

TEST(ConcurrentServerTest, StalenessIsExactUnderQueueing) {
  RuntimeConfig runtime;
  runtime.queue_capacity = 8;
  runtime.queue_shards = 1;
  runtime.start_paused = true;
  ServerEnv env(runtime);

  // Three gradients all computed against version 0, queued before any is
  // processed. K = 1: each updates the model, so the clock reads 0, 1, 2
  // as they are drained — their staleness must be exactly 0, 1, 2.
  for (int i = 0; i < 3; ++i) {
    GradientJob job = env.unit_job(0);
    ASSERT_TRUE(env.server->try_submit(job).accepted);
  }
  env.server->resume();
  env.server->drain();
  const auto stats = env.server->stats();
  ASSERT_EQ(stats.staleness_values.size(), 3u);
  EXPECT_EQ(stats.staleness_values[0], 0.0);
  EXPECT_EQ(stats.staleness_values[1], 1.0);
  EXPECT_EQ(stats.staleness_values[2], 2.0);
  env.server->stop();
}

TEST(ConcurrentServerTest, StalenessStaysExactUnderBatchedShardedDrains) {
  // Satellite regression: saturate the queue while the aggregation thread
  // is parked, then let it drain in small admission-ordered batches through
  // the sharded fold. Every applied gradient's recorded tau must equal
  // (server clock at processing) - (model version at request) — the
  // batching and the shard fan-out must not smear the logical clock.
  RuntimeConfig runtime;
  runtime.queue_capacity = 64;
  runtime.queue_shards = 4;
  runtime.start_paused = true;
  runtime.aggregation_shards = 2;
  runtime.max_drain_batch = 4;
  ServerEnv env(runtime);

  // Wave 1: ten gradients, all computed against version 0, queued before
  // any is processed. K = 1: the clock reads 0..9 as they drain.
  for (std::size_t i = 0; i < 10; ++i) {
    GradientJob job = env.unit_job(env.server->version());
    ASSERT_TRUE(env.server->try_submit(job).accepted);
  }
  env.server->resume();
  env.server->drain();
  EXPECT_EQ(env.server->version(), 10u);

  // Wave 2: park again mid-life and stage a second backlog against the
  // advanced clock; tau must restart from 0 relative to version 10.
  env.server->pause();
  for (std::size_t i = 0; i < 6; ++i) {
    GradientJob job = env.unit_job(10);
    ASSERT_TRUE(env.server->try_submit(job).accepted);
  }
  env.server->resume();
  env.server->drain();

  const auto stats = env.server->stats();
  ASSERT_EQ(stats.staleness_values.size(), 16u);
  for (std::size_t i = 0; i < 10; ++i) {
    // Clock at processing was i; version at request was 0.
    EXPECT_EQ(stats.staleness_values[i], static_cast<double>(i)) << i;
  }
  for (std::size_t i = 0; i < 6; ++i) {
    // Clock at processing was 10 + i; version at request was 10.
    EXPECT_EQ(stats.staleness_values[10 + i], static_cast<double>(i)) << i;
  }
  EXPECT_EQ(env.server->version(), 16u);
  env.server->stop();
}

TEST(ConcurrentServerTest, ShardedBatchedFoldMatchesSequentialBitwise) {
  // The same staged backlog through (a) the PR-2 sequential fold and
  // (b) the sharded fold with batched drains must yield bit-identical
  // parameters: weights are computed centrally and every parameter index
  // sees the same operation sequence.
  auto run = [](const RuntimeConfig& runtime) {
    ServerEnv env(runtime);
    for (std::size_t i = 0; i < 12; ++i) {
      // All staged against version 0 (the thread is parked), so the drain
      // produces staleness 0..11 identically in every configuration.
      GradientJob job = env.varied_job(0, i);
      EXPECT_TRUE(env.server->try_submit(job).accepted);
    }
    env.server->resume();
    env.server->drain();
    env.server->stop();
    const auto view = env.model->parameters_view();
    return std::vector<float>(view.begin(), view.end());
  };

  RuntimeConfig sequential;
  sequential.start_paused = true;
  const auto reference = run(sequential);

  for (const std::size_t shards : {2u, 4u}) {
    for (const std::size_t batch : {1u, 3u, 0u}) {
      RuntimeConfig runtime;
      runtime.start_paused = true;
      runtime.aggregation_shards = shards;
      runtime.max_drain_batch = batch;
      const auto params = run(runtime);
      ASSERT_EQ(params.size(), reference.size());
      EXPECT_EQ(0, std::memcmp(params.data(), reference.data(),
                               reference.size() * sizeof(float)))
          << "shards=" << shards << " batch=" << batch;
    }
  }
}

TEST(ConcurrentServerTest, StatsSurfaceQueueOccupancyGauges) {
  RuntimeConfig runtime;
  runtime.queue_capacity = 16;
  runtime.queue_shards = 2;
  runtime.start_paused = true;  // hold the backlog so the gauges are stable
  ServerEnv env(runtime);

  for (std::size_t i = 0; i < 3; ++i) {
    GradientJob job = env.unit_job(0);
    ASSERT_TRUE(env.server->try_submit(job).accepted);
  }
  auto stats = env.server->stats();
  EXPECT_EQ(stats.queue_depth, 3u);
  EXPECT_EQ(stats.queue_max_depth_seen, 3u);
  ASSERT_EQ(stats.queue_shard_depths.size(), 2u);
  EXPECT_EQ(stats.queue_shard_depths[0] + stats.queue_shard_depths[1], 3u);

  env.server->resume();
  env.server->drain();
  stats = env.server->stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  // The high-water mark survives the drain — and host_stats() carries it
  // too, the view that outlives every session.
  EXPECT_EQ(stats.queue_max_depth_seen, 3u);
  EXPECT_EQ(env.server->host_stats().queue_max_depth_seen, 3u);
  EXPECT_EQ(stats.queue_shard_depths,
            std::vector<std::size_t>(2, 0u));
  EXPECT_EQ(stats.retired_drops, 0u);
  env.server->stop();
}

TEST(ConcurrentServerTest, MalformedJobsAreRefusedAtAdmission) {
  // A throw on the aggregation thread would terminate the process, so
  // every input the downstream components validate must be screened in
  // try_submit and surface as a permanent (non-retryable) rejection.
  ServerEnv env;

  GradientJob wrong_size = env.unit_job(0);
  wrong_size.gradient.resize(3);
  auto receipt = env.server->try_submit(wrong_size);
  EXPECT_FALSE(receipt.accepted);
  EXPECT_FALSE(receipt.retryable);

  GradientJob wrong_classes = env.unit_job(0);
  wrong_classes.label_dist = stats::LabelDistribution(1);
  receipt = env.server->try_submit(wrong_classes);
  EXPECT_FALSE(receipt.accepted);
  EXPECT_FALSE(receipt.retryable);

  GradientJob bad_feedback = env.unit_job(0);
  bad_feedback.feedback = profiler::Observation{};  // mini_batch == 0
  receipt = env.server->try_submit(bad_feedback);
  EXPECT_FALSE(receipt.accepted);
  EXPECT_FALSE(receipt.retryable);

  // The server is unharmed: a well-formed job still goes through.
  GradientJob good = env.unit_job(0);
  EXPECT_TRUE(env.server->try_submit(good).accepted);
  env.server->drain();
  EXPECT_EQ(env.server->stats().processed, 1u);
  env.server->stop();
}

TEST(ConcurrentServerTest, FutureVersionJobsAreDroppedNotApplied) {
  ServerEnv env;
  GradientJob job = env.unit_job(999);
  ASSERT_TRUE(env.server->try_submit(job).accepted);
  env.server->drain();
  const auto stats = env.server->stats();
  EXPECT_EQ(stats.invalid_jobs, 1u);
  EXPECT_EQ(stats.processed, 0u);
  EXPECT_EQ(env.server->version(), 0u);
  env.server->stop();
}

TEST(ConcurrentServerTest, ConcurrentRequestersAndSubmittersStayConsistent) {
  ServerEnv env;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 25;
  const std::size_t param_count = env.model->parameter_count();

  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Lock-free snapshot read, then a submit against that version.
        const auto record = env.server->current();
        ASSERT_NE(record.snapshot, nullptr);
        ASSERT_EQ(record.snapshot->size(), param_count);
        GradientJob job = env.unit_job(record.version);
        while (!env.server->try_submit(job).accepted) {
          std::this_thread::yield();
        }
        accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : pool) t.join();
  env.server->drain();

  const auto stats = env.server->stats();
  EXPECT_EQ(accepted.load(), kThreads * kPerThread);
  EXPECT_EQ(stats.processed, kThreads * kPerThread);
  EXPECT_EQ(stats.invalid_jobs, 0u);
  // K = 1: every processed gradient advanced the clock.
  EXPECT_EQ(env.server->version(), kThreads * kPerThread);
  for (double tau : stats.staleness_values) EXPECT_GE(tau, 0.0);
  env.server->stop();
}

/// Multi-tenant host with `tenants` identically shaped sessions.
struct HostEnv {
  HostEnv(const RuntimeConfig& runtime, std::size_t tenants) {
    server = std::make_unique<ConcurrentFleetServer>(runtime);
    core::ServerConfig config;
    config.learning_rate = 0.1f;
    for (std::size_t m = 0; m < tenants; ++m) {
      models.push_back(nn::zoo::mlp(8, 4, 3));
      models.back()->init(static_cast<unsigned>(7 + m));
      ids.push_back(
          server->register_model(*models.back(), pretrained_iprof(), config));
    }
  }

  GradientJob varied_job(core::ModelId id, std::size_t task_version,
                         std::size_t salt) const {
    GradientJob job;
    job.model_id = id;
    job.task_version = task_version;
    job.gradient.resize(models[0]->parameter_count());
    for (std::size_t i = 0; i < job.gradient.size(); ++i) {
      job.gradient[i] =
          0.001f * static_cast<float>((i * 7 + salt * 13 + id * 5) % 23) -
          0.01f;
    }
    job.label_dist = stats::LabelDistribution(models[0]->n_classes());
    job.label_dist.add(static_cast<int>(salt % models[0]->n_classes()), 2);
    job.mini_batch = 4;
    return job;
  }

  std::vector<std::unique_ptr<nn::Sequential>> models;
  std::vector<core::ModelId> ids;
  std::unique_ptr<ConcurrentFleetServer> server;
};

TEST(ConcurrentServerTest, RejectsZeroPlannerThreads) {
  RuntimeConfig runtime;
  runtime.planner_threads = 0;
  EXPECT_THROW(ConcurrentFleetServer{runtime}, std::invalid_argument);
}

TEST(ConcurrentServerTest, MultiPlannerHostMatchesSinglePlannerBitwise) {
  // Sessions shard across planners by id; every session's jobs are staged
  // against version 0 while the planners are parked, so each session's
  // fold sequence is fully determined — any planner count must reproduce
  // the single-planner parameters bit for bit, per tenant.
  constexpr std::size_t kTenants = 4;
  constexpr std::size_t kJobsPerTenant = 8;
  auto run = [&](std::size_t planners) {
    RuntimeConfig runtime;
    runtime.start_paused = true;
    runtime.planner_threads = planners;
    runtime.aggregation_shards = 2;
    runtime.max_drain_batch = 3;
    HostEnv env(runtime, kTenants);
    for (std::size_t i = 0; i < kJobsPerTenant; ++i) {
      for (const core::ModelId id : env.ids) {
        GradientJob job = env.varied_job(id, 0, i);
        EXPECT_TRUE(env.server->try_submit(job).accepted);
      }
    }
    env.server->resume();
    env.server->drain();
    for (const core::ModelId id : env.ids) {
      const auto stats = env.server->stats(id);
      EXPECT_EQ(stats.processed, kJobsPerTenant) << "session " << id;
      EXPECT_EQ(stats.planner_threads, planners);
    }
    env.server->stop();
    std::vector<std::vector<float>> params;
    for (const auto& model : env.models) {
      const auto view = model->parameters_view();
      params.emplace_back(view.begin(), view.end());
    }
    return params;
  };

  const auto reference = run(1);
  for (const std::size_t planners : {2u, 3u, 4u}) {
    const auto got = run(planners);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t m = 0; m < reference.size(); ++m) {
      ASSERT_EQ(got[m].size(), reference[m].size());
      EXPECT_EQ(0, std::memcmp(got[m].data(), reference[m].data(),
                               reference[m].size() * sizeof(float)))
          << "planners=" << planners << " tenant=" << m;
    }
  }
}

TEST(ConcurrentServerTest, AdaptiveBatchingIsBitwiseInvisibleAndSurfaced) {
  // The adaptive controller only moves the drain-batch limit, and batch
  // size never changes a session's fold sequence — so adaptive mode must
  // reproduce the pinned-batch parameters exactly while its stats surface
  // through RuntimeStats.
  auto run = [](bool adaptive, AdaptiveBatcher::Stats* out_totals,
                std::size_t* out_limits) {
    RuntimeConfig runtime;
    runtime.start_paused = true;
    runtime.planner_threads = 2;
    runtime.max_drain_batch = 2;
    if (adaptive) {
      runtime.adaptive_batch.enabled = true;
      runtime.adaptive_batch.min_batch = 2;
      runtime.adaptive_batch.max_batch = 16;
      runtime.adaptive_batch.window = 1;
      runtime.adaptive_batch.hysteresis = 1;
    }
    HostEnv env(runtime, 2);
    for (std::size_t i = 0; i < 24; ++i) {
      for (const core::ModelId id : env.ids) {
        GradientJob job = env.varied_job(id, 0, i);
        EXPECT_TRUE(env.server->try_submit(job).accepted);
      }
    }
    env.server->resume();
    env.server->drain();
    const auto stats = env.server->stats(env.ids[0]);
    if (adaptive) {
      EXPECT_EQ(stats.planner_batch_limits.size(), 2u);
      for (const std::size_t limit : stats.planner_batch_limits) {
        EXPECT_GE(limit, 2u);
        EXPECT_LE(limit, 16u);
      }
      if (out_totals != nullptr) {
        out_totals->widenings = stats.adaptive_widenings;
        out_totals->narrowings = stats.adaptive_narrowings;
      }
      if (out_limits != nullptr) {
        *out_limits = stats.planner_batch_limits.size();
      }
    } else {
      EXPECT_TRUE(stats.planner_batch_limits.empty());
      EXPECT_EQ(stats.adaptive_widenings, 0u);
    }
    env.server->stop();
    std::vector<float> params;
    for (const auto& model : env.models) {
      const auto view = model->parameters_view();
      params.insert(params.end(), view.begin(), view.end());
    }
    return params;
  };

  const auto pinned = run(false, nullptr, nullptr);
  AdaptiveBatcher::Stats totals;
  std::size_t limit_count = 0;
  const auto adapted = run(true, &totals, &limit_count);
  ASSERT_EQ(adapted.size(), pinned.size());
  EXPECT_EQ(0, std::memcmp(adapted.data(), pinned.data(),
                           pinned.size() * sizeof(float)));
  // A 24-deep staged backlog against a starting limit of 2 with window =
  // hysteresis = 1 must widen on the first control window.
  EXPECT_GE(totals.widenings, 1u);
  EXPECT_EQ(limit_count, 2u);
}

TEST(ConcurrentServerTest, ImpossiblePinFallsBackUnpinnedAndCountsIt) {
  RuntimeConfig runtime;
  runtime.pin_fold_workers = true;
  runtime.planner_threads = 1;
  // CPU index no machine has: the pin is refused deterministically, on
  // every platform, and the host must degrade to unpinned operation.
  runtime.placement_override = {1 << 20};
  runtime.telemetry.enabled = true;
  ServerEnv env(runtime);

  GradientJob job = env.unit_job(0);
  ASSERT_TRUE(env.server->try_submit(job).accepted);
  env.server->drain();
  const auto stats = env.server->stats();
  EXPECT_EQ(stats.processed, 1u);  // degraded, not broken
  EXPECT_FALSE(stats.pinning_applied);
  const auto metrics = env.server->telemetry()->metrics().snapshot();
  EXPECT_GE(metrics.counter("server.pinning_fallback"), 1u);
  env.server->stop();
}

TEST(ConcurrentServerTest, SupportedPinIsAppliedAndReported) {
  // Probe whether this environment lets us pin to CPU 0 at all (cpusets
  // and non-Linux hosts legitimately refuse — that path is covered by the
  // fallback test above).
  {
    std::atomic<bool> release{false};
    std::thread probe([&release] {
      while (!release.load()) std::this_thread::yield();
    });
    const bool can_pin =
        affinity_supported() && pin_thread_to_cpu(probe.native_handle(), 0);
    release.store(true);
    probe.join();
    if (!can_pin) GTEST_SKIP() << "CPU affinity unavailable here";
  }

  RuntimeConfig runtime;
  runtime.pin_fold_workers = true;
  runtime.planner_threads = 1;
  runtime.placement_override = {0};
  runtime.telemetry.enabled = true;
  ServerEnv env(runtime);
  EXPECT_TRUE(env.server->stats().pinning_applied);
  const auto metrics = env.server->telemetry()->metrics().snapshot();
  EXPECT_EQ(metrics.counter("server.pinning_fallback"), 0u);
  env.server->stop();
}

TEST(ConcurrentServerTest, UnpinnedHostReportsPinningNotApplied) {
  ServerEnv env;  // pin_fold_workers defaults to false
  EXPECT_FALSE(env.server->stats().pinning_applied);
  EXPECT_EQ(env.server->stats().planner_threads, 1u);
  env.server->stop();
}

}  // namespace
}  // namespace fleet::runtime
