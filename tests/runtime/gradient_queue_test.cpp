#include "fleet/runtime/gradient_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fleet::runtime {
namespace {

GradientJob job_with_version(std::size_t version) {
  GradientJob job;
  job.task_version = version;
  job.gradient = {static_cast<float>(version)};
  job.mini_batch = 1;
  return job;
}

TEST(GradientQueueTest, RejectsZeroCapacityOrShards) {
  EXPECT_THROW(GradientQueue(0, 1), std::invalid_argument);
  EXPECT_THROW(GradientQueue(1, 0), std::invalid_argument);
}

TEST(GradientQueueTest, DrainReturnsPushOrderAcrossShards) {
  GradientQueue queue(64, 4);
  for (std::size_t i = 0; i < 16; ++i) {
    GradientJob job = job_with_version(i);
    // Scatter across shards on purpose; tickets must restore push order.
    ASSERT_TRUE(queue.try_push(job, /*shard_hint=*/i));
  }
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out), 16u);
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i].task_version, i) << "position " << i;
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(GradientQueueTest, BackpressureLeavesJobIntactAndCounts) {
  GradientQueue queue(2, 1);
  GradientJob a = job_with_version(1);
  GradientJob b = job_with_version(2);
  GradientJob c = job_with_version(3);
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  EXPECT_FALSE(queue.try_push(c));
  // Rejected push must not have consumed the job.
  EXPECT_EQ(c.task_version, 3u);
  ASSERT_EQ(c.gradient.size(), 1u);
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.size(), 2u);

  std::vector<GradientJob> out;
  queue.drain(out);
  EXPECT_TRUE(queue.try_push(c));  // space again after the drain
}

TEST(GradientQueueTest, BoundedDrainTakesAdmissionOrderPrefixes) {
  GradientQueue queue(64, 4);
  for (std::size_t i = 0; i < 10; ++i) {
    GradientJob job = job_with_version(i);
    // Scatter across shards; a bounded drain must still pop the globally
    // smallest tickets, i.e. exact admission-order prefixes.
    ASSERT_TRUE(queue.try_push(job, /*shard_hint=*/i * 3));
  }
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out, 3), 3u);
  EXPECT_EQ(queue.size(), 7u);
  EXPECT_EQ(queue.drain(out, 5), 5u);
  EXPECT_EQ(queue.drain(out, 100), 2u);  // bound above content: take rest
  EXPECT_EQ(queue.size(), 0u);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].task_version, i) << "position " << i;
  }
  EXPECT_EQ(queue.drain(out, 4), 0u);  // empty: nothing to take
}

TEST(GradientQueueTest, BoundedDrainReleasesCapacityForProducers) {
  GradientQueue queue(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job));
  }
  GradientJob full = job_with_version(99);
  EXPECT_FALSE(queue.try_push(full));

  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out, 2), 2u);
  EXPECT_TRUE(queue.try_push(full));  // the two popped slots are free again
  GradientJob more = job_with_version(100);
  EXPECT_TRUE(queue.try_push(more));
  GradientJob over = job_with_version(101);
  EXPECT_FALSE(queue.try_push(over));
}

TEST(GradientQueueTest, DepthGaugesTrackOccupancyPerShard) {
  GradientQueue queue(64, 4);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.shard_depths(), std::vector<std::size_t>({0, 0, 0, 0}));

  // Pin pushes to shards 0, 0, 1, 3 via the hint.
  for (const std::size_t shard : {0u, 0u, 1u, 3u}) {
    GradientJob job = job_with_version(shard);
    ASSERT_TRUE(queue.try_push(job, shard));
  }
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.shard_depths(), std::vector<std::size_t>({2, 1, 0, 1}));

  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out, 3), 3u);  // pops the three smallest tickets
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.shard_depths(), std::vector<std::size_t>({0, 0, 0, 1}));
  EXPECT_EQ(queue.drain(out), 1u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(GradientQueueTest, MaxDepthSeenIsAMonotoneHighWaterMark) {
  GradientQueue queue(8, 2);
  EXPECT_EQ(queue.max_depth_seen(), 0u);

  for (std::size_t i = 0; i < 3; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  EXPECT_EQ(queue.max_depth_seen(), 3u);

  // Draining lowers depth() but never the high-water mark.
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out), 3u);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.max_depth_seen(), 3u);

  // A shallower refill leaves the mark where the deepest burst put it; a
  // deeper one raises it.
  for (std::size_t i = 0; i < 2; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  EXPECT_EQ(queue.max_depth_seen(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  EXPECT_EQ(queue.max_depth_seen(), 5u);
}

TEST(GradientQueueTest, MaxDepthSeenCapsAtCapacityUnderRejection) {
  GradientQueue queue(2, 1);
  GradientJob a = job_with_version(1);
  GradientJob b = job_with_version(2);
  GradientJob c = job_with_version(3);
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  EXPECT_FALSE(queue.try_push(c));  // bounced off the bound
  EXPECT_EQ(queue.rejected(), 1u);
  // Rejected pushes never raise the gauge past what actually queued.
  EXPECT_EQ(queue.max_depth_seen(), 2u);
}

TEST(GradientQueueTest, WaitDrainHonorsTheBatchBound) {
  GradientQueue queue(16, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.wait_drain(out, 4), 4u);
  EXPECT_EQ(queue.wait_drain(out, 4), 2u);
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(out[i].task_version, i);
  queue.close();
  EXPECT_EQ(queue.wait_drain(out, 4), 0u);  // closed + empty => 0
}

TEST(GradientQueueTest, CloseStopsPushesAndWakesConsumer) {
  GradientQueue queue(8, 2);
  GradientJob a = job_with_version(7);
  ASSERT_TRUE(queue.try_push(a));
  queue.close();
  GradientJob b = job_with_version(8);
  EXPECT_FALSE(queue.try_push(b));

  std::vector<GradientJob> out;
  EXPECT_EQ(queue.wait_drain(out), 1u);  // leftover drains after close
  EXPECT_EQ(out[0].task_version, 7u);
  EXPECT_EQ(queue.wait_drain(out), 0u);  // closed + empty => 0
}

TEST(GradientQueueTest, ConcurrentProducersLoseNothingAndKeepPerProducerFifo) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 200;
  GradientQueue queue(64, 4);

  std::vector<GradientJob> out;
  std::thread consumer([&] {
    while (queue.wait_drain(out) > 0) {
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        // Encode (producer, sequence) into task_version.
        GradientJob job = job_with_version(p * 1000 + i);
        while (!queue.try_push(job)) {
          std::this_thread::yield();  // bounded queue: spin on backpressure
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  consumer.join();

  ASSERT_EQ(out.size(), kProducers * kPerProducer);
  // FIFO per producer: each producer's sequence numbers appear in order.
  std::vector<std::size_t> next_seq(kProducers, 0);
  for (const GradientJob& job : out) {
    const std::size_t p = job.task_version / 1000;
    const std::size_t seq = job.task_version % 1000;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next_seq[p]);
    ++next_seq[p];
  }
}

GradientJob job_for_model(core::ModelId model_id, std::size_t version) {
  GradientJob job = job_with_version(version);
  job.model_id = model_id;
  return job;
}

TEST(GradientQueueTest, ShardCountIsRaisedToTheGroupCount) {
  GradientQueue queue(64, /*shards=*/1, /*telemetry=*/nullptr, /*groups=*/4);
  EXPECT_EQ(queue.group_count(), 4u);
  // Every group must own at least one shard, so one shard becomes four.
  EXPECT_EQ(queue.shard_count(), 4u);

  GradientQueue roomy(64, /*shards=*/8, nullptr, /*groups=*/3);
  EXPECT_EQ(roomy.shard_count(), 8u);
  EXPECT_EQ(roomy.group_count(), 3u);
}

TEST(GradientQueueTest, RoutesModelsToDisjointGroupsInTicketOrder) {
  GradientQueue queue(64, 4, nullptr, /*groups=*/2);
  // Interleave pushes for four models; models 0/2 belong to group 0 and
  // 1/3 to group 1 (id % groups).
  for (std::size_t i = 0; i < 12; ++i) {
    GradientJob job = job_for_model(static_cast<core::ModelId>(i % 4), i);
    ASSERT_TRUE(queue.try_push(job));
  }
  EXPECT_EQ(queue.group_of(0), 0u);
  EXPECT_EQ(queue.group_of(1), 1u);
  EXPECT_EQ(queue.group_depth(0), 6u);
  EXPECT_EQ(queue.group_depth(1), 6u);

  std::vector<GradientJob> even;
  std::vector<GradientJob> odd;
  EXPECT_EQ(queue.drain(even, 0, /*group=*/0), 6u);
  EXPECT_EQ(queue.drain(odd, 0, /*group=*/1), 6u);
  EXPECT_EQ(queue.size(), 0u);

  // Each group's drain holds exactly its models' jobs, in admission order.
  std::vector<std::size_t> even_versions;
  for (const GradientJob& job : even) {
    EXPECT_EQ(job.model_id % 2, 0u);
    even_versions.push_back(job.task_version);
  }
  EXPECT_EQ(even_versions, (std::vector<std::size_t>{0, 2, 4, 6, 8, 10}));
  std::vector<std::size_t> odd_versions;
  for (const GradientJob& job : odd) {
    EXPECT_EQ(job.model_id % 2, 1u);
    odd_versions.push_back(job.task_version);
  }
  EXPECT_EQ(odd_versions, (std::vector<std::size_t>{1, 3, 5, 7, 9, 11}));
}

TEST(GradientQueueTest, BoundedGroupDrainTakesGroupAdmissionPrefixes) {
  GradientQueue queue(64, 4, nullptr, /*groups=*/2);
  // 10 jobs for group 0, scattered across its shards by hint, with group-1
  // traffic interleaved so the group-0 tickets are not contiguous.
  for (std::size_t i = 0; i < 10; ++i) {
    GradientJob mine = job_for_model(0, i);
    ASSERT_TRUE(queue.try_push(mine, /*shard_hint=*/i * 3));
    GradientJob other = job_for_model(1, 100 + i);
    ASSERT_TRUE(queue.try_push(other, /*shard_hint=*/i));
  }
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out, 3, /*group=*/0), 3u);
  EXPECT_EQ(queue.group_depth(0), 7u);
  EXPECT_EQ(queue.drain(out, 5, /*group=*/0), 5u);
  EXPECT_EQ(queue.drain(out, 100, /*group=*/0), 2u);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].task_version, i) << "position " << i;
  }
  // Group 1's stream is untouched by group-0 drains.
  EXPECT_EQ(queue.group_depth(1), 10u);
  std::vector<GradientJob> other_out;
  EXPECT_EQ(queue.drain(other_out, 0, /*group=*/1), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(other_out[i].task_version, 100 + i);
  }
}

TEST(GradientQueueTest, WindowedGroupDepthPeakReArmsAtCurrentDepth) {
  GradientQueue queue(64, 2, nullptr, /*groups=*/1);
  EXPECT_EQ(queue.take_group_depth_peak(0), 0u);

  for (std::size_t i = 0; i < 5; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out), 5u);

  // The burst happened inside this window: the first take still sees it,
  // the next take reads the re-armed (now empty) window.
  EXPECT_EQ(queue.take_group_depth_peak(0), 5u);
  EXPECT_EQ(queue.take_group_depth_peak(0), 0u);
  // The monotone high-water mark, by contrast, never decays.
  EXPECT_EQ(queue.max_depth_seen(), 5u);

  // A standing backlog keeps reading its depth window after window.
  for (std::size_t i = 0; i < 3; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  EXPECT_EQ(queue.take_group_depth_peak(0), 3u);
  EXPECT_EQ(queue.take_group_depth_peak(0), 3u);
}

TEST(GradientQueueTest, CloseWakesEveryGroupConsumer) {
  GradientQueue queue(64, 4, nullptr, /*groups=*/3);
  std::vector<std::thread> consumers;
  std::vector<std::size_t> taken(3, 99);
  for (std::size_t g = 0; g < 3; ++g) {
    consumers.emplace_back([&queue, &taken, g] {
      std::vector<GradientJob> out;
      // Blocks on the empty group until close() broadcasts.
      taken[g] = queue.wait_drain(out, 0, g);
    });
  }
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(taken, (std::vector<std::size_t>{0, 0, 0}));
}

TEST(GradientQueueTest, ConcurrentGroupConsumersDrainDisjointFifoStreams) {
  constexpr std::size_t kGroups = 2;
  constexpr std::size_t kModels = 4;
  constexpr std::size_t kPerModel = 150;
  GradientQueue queue(64, 4, nullptr, kGroups);

  std::vector<std::vector<GradientJob>> out(kGroups);
  std::vector<std::thread> consumers;
  for (std::size_t g = 0; g < kGroups; ++g) {
    consumers.emplace_back([&queue, &out, g] {
      while (queue.wait_drain(out[g], 16, g) > 0) {
      }
    });
  }

  std::vector<std::thread> producers;
  for (std::size_t m = 0; m < kModels; ++m) {
    producers.emplace_back([&queue, m] {
      for (std::size_t i = 0; i < kPerModel; ++i) {
        GradientJob job =
            job_for_model(static_cast<core::ModelId>(m), m * 1000 + i);
        while (!queue.try_push(job)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  // Nothing lost, nothing cross-delivered, and each model's stream is FIFO
  // within its group's drain sequence.
  std::vector<std::size_t> next_seq(kModels, 0);
  std::size_t total = 0;
  for (std::size_t g = 0; g < kGroups; ++g) {
    for (const GradientJob& job : out[g]) {
      const std::size_t m = job.task_version / 1000;
      ASSERT_LT(m, kModels);
      EXPECT_EQ(queue.group_of(job.model_id), g);
      EXPECT_EQ(job.task_version % 1000, next_seq[m]);
      ++next_seq[m];
      ++total;
    }
  }
  EXPECT_EQ(total, kModels * kPerModel);
}

}  // namespace
}  // namespace fleet::runtime
