#include "fleet/runtime/gradient_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fleet::runtime {
namespace {

GradientJob job_with_version(std::size_t version) {
  GradientJob job;
  job.task_version = version;
  job.gradient = {static_cast<float>(version)};
  job.mini_batch = 1;
  return job;
}

TEST(GradientQueueTest, RejectsZeroCapacityOrShards) {
  EXPECT_THROW(GradientQueue(0, 1), std::invalid_argument);
  EXPECT_THROW(GradientQueue(1, 0), std::invalid_argument);
}

TEST(GradientQueueTest, DrainReturnsPushOrderAcrossShards) {
  GradientQueue queue(64, 4);
  for (std::size_t i = 0; i < 16; ++i) {
    GradientJob job = job_with_version(i);
    // Scatter across shards on purpose; tickets must restore push order.
    ASSERT_TRUE(queue.try_push(job, /*shard_hint=*/i));
  }
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out), 16u);
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i].task_version, i) << "position " << i;
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(GradientQueueTest, BackpressureLeavesJobIntactAndCounts) {
  GradientQueue queue(2, 1);
  GradientJob a = job_with_version(1);
  GradientJob b = job_with_version(2);
  GradientJob c = job_with_version(3);
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  EXPECT_FALSE(queue.try_push(c));
  // Rejected push must not have consumed the job.
  EXPECT_EQ(c.task_version, 3u);
  ASSERT_EQ(c.gradient.size(), 1u);
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.size(), 2u);

  std::vector<GradientJob> out;
  queue.drain(out);
  EXPECT_TRUE(queue.try_push(c));  // space again after the drain
}

TEST(GradientQueueTest, BoundedDrainTakesAdmissionOrderPrefixes) {
  GradientQueue queue(64, 4);
  for (std::size_t i = 0; i < 10; ++i) {
    GradientJob job = job_with_version(i);
    // Scatter across shards; a bounded drain must still pop the globally
    // smallest tickets, i.e. exact admission-order prefixes.
    ASSERT_TRUE(queue.try_push(job, /*shard_hint=*/i * 3));
  }
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out, 3), 3u);
  EXPECT_EQ(queue.size(), 7u);
  EXPECT_EQ(queue.drain(out, 5), 5u);
  EXPECT_EQ(queue.drain(out, 100), 2u);  // bound above content: take rest
  EXPECT_EQ(queue.size(), 0u);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].task_version, i) << "position " << i;
  }
  EXPECT_EQ(queue.drain(out, 4), 0u);  // empty: nothing to take
}

TEST(GradientQueueTest, BoundedDrainReleasesCapacityForProducers) {
  GradientQueue queue(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job));
  }
  GradientJob full = job_with_version(99);
  EXPECT_FALSE(queue.try_push(full));

  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out, 2), 2u);
  EXPECT_TRUE(queue.try_push(full));  // the two popped slots are free again
  GradientJob more = job_with_version(100);
  EXPECT_TRUE(queue.try_push(more));
  GradientJob over = job_with_version(101);
  EXPECT_FALSE(queue.try_push(over));
}

TEST(GradientQueueTest, DepthGaugesTrackOccupancyPerShard) {
  GradientQueue queue(64, 4);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.shard_depths(), std::vector<std::size_t>({0, 0, 0, 0}));

  // Pin pushes to shards 0, 0, 1, 3 via the hint.
  for (const std::size_t shard : {0u, 0u, 1u, 3u}) {
    GradientJob job = job_with_version(shard);
    ASSERT_TRUE(queue.try_push(job, shard));
  }
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.shard_depths(), std::vector<std::size_t>({2, 1, 0, 1}));

  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out, 3), 3u);  // pops the three smallest tickets
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.shard_depths(), std::vector<std::size_t>({0, 0, 0, 1}));
  EXPECT_EQ(queue.drain(out), 1u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(GradientQueueTest, MaxDepthSeenIsAMonotoneHighWaterMark) {
  GradientQueue queue(8, 2);
  EXPECT_EQ(queue.max_depth_seen(), 0u);

  for (std::size_t i = 0; i < 3; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  EXPECT_EQ(queue.max_depth_seen(), 3u);

  // Draining lowers depth() but never the high-water mark.
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.drain(out), 3u);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.max_depth_seen(), 3u);

  // A shallower refill leaves the mark where the deepest burst put it; a
  // deeper one raises it.
  for (std::size_t i = 0; i < 2; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  EXPECT_EQ(queue.max_depth_seen(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  EXPECT_EQ(queue.max_depth_seen(), 5u);
}

TEST(GradientQueueTest, MaxDepthSeenCapsAtCapacityUnderRejection) {
  GradientQueue queue(2, 1);
  GradientJob a = job_with_version(1);
  GradientJob b = job_with_version(2);
  GradientJob c = job_with_version(3);
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  EXPECT_FALSE(queue.try_push(c));  // bounced off the bound
  EXPECT_EQ(queue.rejected(), 1u);
  // Rejected pushes never raise the gauge past what actually queued.
  EXPECT_EQ(queue.max_depth_seen(), 2u);
}

TEST(GradientQueueTest, WaitDrainHonorsTheBatchBound) {
  GradientQueue queue(16, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    GradientJob job = job_with_version(i);
    ASSERT_TRUE(queue.try_push(job, i));
  }
  std::vector<GradientJob> out;
  EXPECT_EQ(queue.wait_drain(out, 4), 4u);
  EXPECT_EQ(queue.wait_drain(out, 4), 2u);
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(out[i].task_version, i);
  queue.close();
  EXPECT_EQ(queue.wait_drain(out, 4), 0u);  // closed + empty => 0
}

TEST(GradientQueueTest, CloseStopsPushesAndWakesConsumer) {
  GradientQueue queue(8, 2);
  GradientJob a = job_with_version(7);
  ASSERT_TRUE(queue.try_push(a));
  queue.close();
  GradientJob b = job_with_version(8);
  EXPECT_FALSE(queue.try_push(b));

  std::vector<GradientJob> out;
  EXPECT_EQ(queue.wait_drain(out), 1u);  // leftover drains after close
  EXPECT_EQ(out[0].task_version, 7u);
  EXPECT_EQ(queue.wait_drain(out), 0u);  // closed + empty => 0
}

TEST(GradientQueueTest, ConcurrentProducersLoseNothingAndKeepPerProducerFifo) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 200;
  GradientQueue queue(64, 4);

  std::vector<GradientJob> out;
  std::thread consumer([&] {
    while (queue.wait_drain(out) > 0) {
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        // Encode (producer, sequence) into task_version.
        GradientJob job = job_with_version(p * 1000 + i);
        while (!queue.try_push(job)) {
          std::this_thread::yield();  // bounded queue: spin on backpressure
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  consumer.join();

  ASSERT_EQ(out.size(), kProducers * kPerProducer);
  // FIFO per producer: each producer's sequence numbers appear in order.
  std::vector<std::size_t> next_seq(kProducers, 0);
  for (const GradientJob& job : out) {
    const std::size_t p = job.task_version / 1000;
    const std::size_t seq = job.task_version % 1000;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next_seq[p]);
    ++next_seq[p];
  }
}

}  // namespace
}  // namespace fleet::runtime
