#include "fleet/runtime/topology.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>

namespace fleet::runtime {
namespace {

TEST(TopologyTest, ParsesCpulistRangesAndSingles) {
  const auto cpus = parse_cpulist("0-3,8,10-11\n");
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
}

TEST(TopologyTest, ParsesSingleCpu) {
  EXPECT_EQ(parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpulist("0\n"), (std::vector<int>{0}));
}

TEST(TopologyTest, SkipsMalformedChunksAndDeduplicates) {
  // Bad chunks are dropped, good ones kept; duplicates collapse.
  EXPECT_EQ(parse_cpulist("a-b,2,x,4-3,2"), (std::vector<int>{2}));
  EXPECT_EQ(parse_cpulist(""), std::vector<int>{});
  EXPECT_EQ(parse_cpulist("garbage"), std::vector<int>{});
}

TEST(TopologyTest, SingleNodeFallbackCoversHardwareConcurrency) {
  const CpuTopology topo = single_node_topology();
  ASSERT_EQ(topo.nodes.size(), 1u);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(topo.cpu_count(), static_cast<std::size_t>(hw));
  EXPECT_FALSE(topo.multi_node());
}

TEST(TopologyTest, MissingSysfsDegradesToSingleNode) {
  const CpuTopology topo = discover_topology("/definitely/not/a/sysfs");
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_GE(topo.cpu_count(), 1u);
}

/// Fake sysfs node dir: node<N>/cpulist files under a temp root.
class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = std::filesystem::temp_directory_path() /
            ("fleet_topo_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  ~FakeSysfs() { std::filesystem::remove_all(root_); }

  void add_node(int id, const std::string& cpulist) {
    const auto dir = root_ / ("node" + std::to_string(id));
    std::filesystem::create_directories(dir);
    std::ofstream out(dir / "cpulist");
    out << cpulist;
  }
  std::string path() const { return root_.string(); }

 private:
  std::filesystem::path root_;
};

TEST(TopologyTest, DiscoversMultiNodeLayoutFromSysfs) {
  FakeSysfs sysfs;
  sysfs.add_node(0, "0-1\n");
  sysfs.add_node(1, "2-3\n");
  const CpuTopology topo = discover_topology(sysfs.path());
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{2, 3}));
}

TEST(TopologyTest, UnparsableSysfsDegradesToSingleNode) {
  FakeSysfs sysfs;
  sysfs.add_node(0, "not a cpulist");
  const CpuTopology topo = discover_topology(sysfs.path());
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_GE(topo.cpu_count(), 1u);
}

TEST(TopologyTest, SingleNodePlacementPutsPlannersBeforeWorkers) {
  CpuTopology topo;
  topo.nodes.push_back(TopologyNode{0, {0, 1, 2, 3}});
  const PlacementPlan plan = plan_placement(topo, 1, 3);
  // The PR-5 layout, generalized: planner on CPU 0, workers after it.
  EXPECT_EQ(plan.planner_cpus, (std::vector<int>{0}));
  EXPECT_EQ(plan.fold_worker_cpus, (std::vector<int>{1, 2, 3}));
}

TEST(TopologyTest, MultiNodePlacementCoPlacesAcrossNodes) {
  CpuTopology topo;
  topo.nodes.push_back(TopologyNode{0, {0, 1}});
  topo.nodes.push_back(TopologyNode{1, {2, 3}});
  const PlacementPlan plan = plan_placement(topo, 2, 2);
  // Planner p on node p, fold worker w on node w: each node hosts one
  // planner and one fold worker (co-placement), with distinct CPUs.
  EXPECT_EQ(plan.planner_cpus, (std::vector<int>{0, 2}));
  EXPECT_EQ(plan.fold_worker_cpus, (std::vector<int>{1, 3}));
}

TEST(TopologyTest, OversubscribedPlacementWrapsInsteadOfFailing) {
  CpuTopology topo;
  topo.nodes.push_back(TopologyNode{0, {0}});
  const PlacementPlan plan = plan_placement(topo, 2, 2);
  EXPECT_EQ(plan.planner_cpus, (std::vector<int>{0, 0}));
  EXPECT_EQ(plan.fold_worker_cpus, (std::vector<int>{0, 0}));
}

TEST(TopologyTest, EmptyTopologyYieldsUnpinnedPlan) {
  const PlacementPlan plan = plan_placement(CpuTopology{}, 2, 1);
  EXPECT_EQ(plan.planner_cpus, (std::vector<int>{-1, -1}));
  EXPECT_EQ(plan.fold_worker_cpus, (std::vector<int>{-1}));
}

TEST(TopologyTest, PinRefusesNegativeAndAbsurdCpus) {
  std::thread t([] {});
  // Negative is refused everywhere; a CPU far past the machine is refused
  // on Linux (EINVAL) and trivially on platforms without affinity.
  EXPECT_FALSE(pin_thread_to_cpu(t.native_handle(), -1));
  EXPECT_FALSE(pin_thread_to_cpu(t.native_handle(), 1 << 20));
  t.join();
}

TEST(TopologyTest, AffinitySupportMatchesPlatform) {
#if defined(__linux__)
  EXPECT_TRUE(affinity_supported());
  // On a supported platform, pinning a thread to its own first allowed
  // CPU should succeed — probe with CPU 0 only if the cpuset allows it;
  // refusal is still a valid (counted) fallback, so just exercise the
  // call for coverage.
  std::thread t([] {});
  (void)pin_thread_to_cpu(t.native_handle(), 0);
  t.join();
#else
  EXPECT_FALSE(affinity_supported());
#endif
}

}  // namespace
}  // namespace fleet::runtime
