// Concurrency tests for the telemetry substrate (DESIGN.md §11) and the
// runtime's gradient-lifecycle instrumentation. This suite runs under the
// CI ThreadSanitizer job (label "runtime"), so the registry/ring hammers
// double as race checks on the striped cells and the SPSC rings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/concurrent_server.hpp"
#include "fleet/telemetry/telemetry.hpp"

namespace fleet::telemetry {
namespace {

TEST(MetricsRegistryTest, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  // Half the threads race the registration itself: re-registering a name
  // must return the same counter.
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry] {
      Counter* counter = registry.counter("hammer");
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter->add();
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(registry.snapshot().counter("hammer"), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, HistogramHammerWithConcurrentSnapshots) {
  MetricsRegistry registry;
  Histogram* hist = registry.histogram("lat", latency_bounds_ns());
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::atomic<bool> stop{false};
  // A reader snapshotting mid-hammer must always see internally consistent
  // histograms (count == sum of buckets), never torn bucket vectors.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const HistogramSnapshot snap = hist->snapshot();
      std::uint64_t bucket_total = 0;
      for (const std::uint64_t c : snap.counts) bucket_total += c;
      EXPECT_EQ(bucket_total, snap.count);
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist->record(static_cast<double>(1000 * (t + 1) + i % 7));
      }
    });
  }
  for (auto& thread : writers) thread.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const HistogramSnapshot snap = hist->snapshot();
  EXPECT_EQ(snap.count, kWriters * kPerThread);
  EXPECT_GE(snap.min, 1000.0);
  EXPECT_LE(snap.max, 4006.0);
}

TEST(TraceRingTest, OverflowDropsAreCountedExactly) {
  TraceRing ring(8, 1);  // capacity rounds to 8
  const std::size_t capacity = ring.capacity();
  const std::size_t attempts = capacity + 13;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < attempts; ++i) {
    TraceEvent ev;
    ev.ticket = i;
    if (ring.try_push(ev)) ++accepted;
  }
  EXPECT_EQ(accepted, capacity);
  EXPECT_EQ(ring.dropped(), attempts - capacity);

  // The ring kept the OLDEST events (drops refuse the new event, they
  // never overwrite), in order.
  std::vector<TraceRecord> out;
  EXPECT_EQ(ring.pop_into(out), capacity);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].event.ticket, i);
    EXPECT_EQ(out[i].tid, 1u);
  }
  // Freed slots accept again; the drop counter is cumulative.
  TraceEvent ev;
  EXPECT_TRUE(ring.try_push(ev));
  EXPECT_EQ(ring.dropped(), attempts - capacity);
}

TEST(TraceCollectorTest, ThreadsGetDistinctRingsAndNothingIsLost) {
  TraceCollector collector(1u << 10);
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&collector, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        TraceEvent ev;
        ev.ticket = t * kPerThread + i;
        collector.emit(ev);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  // Rings of exited threads still drain.
  const std::vector<TraceRecord> records = collector.collect();
  ASSERT_EQ(records.size(), kThreads * kPerThread);
  EXPECT_EQ(collector.dropped(), 0u);
  EXPECT_EQ(collector.ring_count(), kThreads);
  std::set<std::uint32_t> tids;
  std::set<std::uint64_t> tickets;
  for (const TraceRecord& record : records) {
    tids.insert(record.tid);
    tickets.insert(record.event.ticket);
  }
  EXPECT_EQ(tids.size(), kThreads);                 // one lane per thread
  EXPECT_EQ(tickets.size(), kThreads * kPerThread);  // every event exactly once
}

TEST(TraceCollectorTest, CollectorsDoNotAliasThreadCaches) {
  // Two collectors used from the same thread must route to their own rings
  // (the thread-local cache is keyed by collector identity).
  TraceCollector a(64);
  TraceCollector b(64);
  TraceEvent ev;
  a.emit(ev);
  a.emit(ev);
  b.emit(ev);
  EXPECT_EQ(a.collect().size(), 2u);
  EXPECT_EQ(b.collect().size(), 1u);
}

}  // namespace
}  // namespace fleet::telemetry

namespace fleet::runtime {
namespace {

using test::pretrained_iprof;

struct TelemetryEnv {
  explicit TelemetryEnv(RuntimeConfig runtime = {}) {
    model = nn::zoo::mlp(8, 4, 3);
    model->init(7);
    core::ServerConfig config;
    config.learning_rate = 0.1f;
    server = std::make_unique<ConcurrentFleetServer>(*model, pretrained_iprof(),
                                                     config, runtime);
  }

  GradientJob unit_job(std::size_t task_version) const {
    GradientJob job;
    job.task_version = task_version;
    job.gradient.assign(model->parameter_count(), 0.01f);
    job.label_dist = stats::LabelDistribution(model->n_classes());
    job.label_dist.add(0);
    job.mini_batch = 4;
    return job;
  }

  std::unique_ptr<nn::Sequential> model;
  std::unique_ptr<ConcurrentFleetServer> server;
};

std::map<telemetry::TracePhase, std::size_t> phase_counts(
    const std::vector<telemetry::TraceRecord>& records) {
  std::map<telemetry::TracePhase, std::size_t> counts;
  for (const auto& record : records) ++counts[record.event.phase];
  return counts;
}

TEST(RuntimeTelemetryTest, DisabledTelemetryKeepsStatsAndExposesNoSubstrate) {
  TelemetryEnv env;  // RuntimeConfig::telemetry.enabled defaults to false
  EXPECT_EQ(env.server->telemetry(), nullptr);
  GradientJob job = env.unit_job(0);
  ASSERT_TRUE(env.server->try_submit(job).accepted);
  env.server->drain();
  const RuntimeStats stats = env.server->stats();
  EXPECT_EQ(stats.processed, 1u);
  // The RuntimeStats histograms are maintained even without telemetry;
  // only the host-wide queue-wait histogram needs the substrate.
  EXPECT_EQ(stats.staleness_hist.count, 1u);
  EXPECT_EQ(stats.weight_hist.count, 1u);
  EXPECT_EQ(stats.queue_wait.count, 0u);
  env.server->stop();
}

TEST(RuntimeTelemetryTest, LifecycleEventsCoverEveryProcessedGradient) {
  RuntimeConfig runtime;
  runtime.telemetry.enabled = true;
  TelemetryEnv env(runtime);
  constexpr std::size_t kJobs = 16;
  for (std::size_t i = 0; i < kJobs; ++i) {
    GradientJob job = env.unit_job(env.server->version());
    ASSERT_TRUE(env.server->try_submit(job).accepted);
    env.server->drain();
  }
  env.server->stop();

  ASSERT_NE(env.server->telemetry(), nullptr);
  const auto records = env.server->telemetry()->tracer().collect();
  const auto counts = phase_counts(records);
  // Every processed gradient leaves exactly one submit, dequeue and fold.
  EXPECT_EQ(counts.at(telemetry::TracePhase::kSubmit), kJobs);
  EXPECT_EQ(counts.at(telemetry::TracePhase::kDequeue), kJobs);
  EXPECT_EQ(counts.at(telemetry::TracePhase::kFold), kJobs);
  // Drain-separated submits each publish once.
  EXPECT_EQ(counts.at(telemetry::TracePhase::kPublish), kJobs);
  EXPECT_GE(counts.at(telemetry::TracePhase::kDrainBatch), 1u);
  EXPECT_EQ(env.server->telemetry()->tracer().dropped(), 0u);

  // Tickets pair up across submit/dequeue/fold: the same admission ticket
  // keys the whole lifecycle.
  std::set<std::uint64_t> submit_tickets, dequeue_tickets, fold_tickets;
  for (const auto& record : records) {
    switch (record.event.phase) {
      case telemetry::TracePhase::kSubmit:
        submit_tickets.insert(record.event.ticket);
        break;
      case telemetry::TracePhase::kDequeue:
        dequeue_tickets.insert(record.event.ticket);
        break;
      case telemetry::TracePhase::kFold:
        fold_tickets.insert(record.event.ticket);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(submit_tickets, dequeue_tickets);
  EXPECT_EQ(submit_tickets, fold_tickets);
  EXPECT_EQ(submit_tickets.size(), kJobs);

  // The metrics side saw the same traffic.
  const auto snapshot = env.server->telemetry()->metrics().snapshot();
  const auto* wait = snapshot.histogram("queue.wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, kJobs);
  const auto* admit = snapshot.histogram("queue.admit_ns");
  ASSERT_NE(admit, nullptr);
  EXPECT_EQ(admit->count, kJobs);
  const auto* staleness = snapshot.histogram("session.0.staleness");
  ASSERT_NE(staleness, nullptr);
  EXPECT_EQ(staleness->count, kJobs);
}

TEST(RuntimeTelemetryTest, ShardedPathEmitsSessionFoldAndPoolTaskSpans) {
  RuntimeConfig runtime;
  runtime.telemetry.enabled = true;
  runtime.aggregation_shards = 2;
  TelemetryEnv env(runtime);
  constexpr std::size_t kJobs = 8;
  for (std::size_t i = 0; i < kJobs; ++i) {
    GradientJob job = env.unit_job(env.server->version());
    ASSERT_TRUE(env.server->try_submit(job).accepted);
    env.server->drain();
  }
  env.server->stop();

  const auto records = env.server->telemetry()->tracer().collect();
  const auto counts = phase_counts(records);
  EXPECT_EQ(counts.at(telemetry::TracePhase::kFold), kJobs);
  // One session-fold span per non-empty plan (here: one per drain batch),
  // and at least one pool task per span.
  ASSERT_GT(counts.at(telemetry::TracePhase::kSessionFold), 0u);
  EXPECT_GE(counts.at(telemetry::TracePhase::kFoldTask),
            counts.at(telemetry::TracePhase::kSessionFold));
  // Span events carry durations; fold-task lanes are pool threads.
  for (const auto& record : records) {
    if (telemetry::is_span(record.event.phase)) {
      EXPECT_GT(record.event.a, 0u);
    }
  }
  const auto snapshot = env.server->telemetry()->metrics().snapshot();
  const auto* task_ns = snapshot.histogram("pool.task_ns");
  ASSERT_NE(task_ns, nullptr);
  EXPECT_EQ(task_ns->count, counts.at(telemetry::TracePhase::kFoldTask));
}

TEST(RuntimeTelemetryTest, RejectsAndQueueWaitSurfaceInStats) {
  RuntimeConfig runtime;
  runtime.telemetry.enabled = true;
  runtime.queue_capacity = 2;
  runtime.queue_shards = 1;
  runtime.start_paused = true;
  TelemetryEnv env(runtime);
  GradientJob a = env.unit_job(0);
  GradientJob b = env.unit_job(0);
  GradientJob c = env.unit_job(0);
  ASSERT_TRUE(env.server->try_submit(a).accepted);
  ASSERT_TRUE(env.server->try_submit(b).accepted);
  ASSERT_FALSE(env.server->try_submit(c).accepted);
  env.server->resume();
  env.server->drain();
  env.server->stop();

  const RuntimeStats stats = env.server->stats();
  EXPECT_EQ(stats.queue_wait.count, 2u);  // the two drained jobs
  EXPECT_GT(stats.queue_wait.sum, 0.0);   // they waited while paused

  const auto records = env.server->telemetry()->tracer().collect();
  const auto counts = phase_counts(records);
  EXPECT_EQ(counts.at(telemetry::TracePhase::kReject), 1u);
  // The dequeue events carry the queue wait in payload b.
  for (const auto& record : records) {
    if (record.event.phase == telemetry::TracePhase::kDequeue) {
      EXPECT_GT(record.event.b, 0u);
    }
  }
}

TEST(RuntimeTelemetryTest, StatsSnapshotIsOneConsistentCut) {
  // Satellite of the observability PR: stats() must never show a counter
  // ahead of its histograms/traces. Poll stats() while the aggregation
  // thread folds a backlog and assert the cut invariants on every poll.
  RuntimeConfig runtime;
  runtime.queue_capacity = 512;
  TelemetryEnv env(runtime);
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const RuntimeStats stats = env.server->stats();
      EXPECT_EQ(stats.staleness_hist.count, stats.processed);
      EXPECT_EQ(stats.weight_hist.count, stats.processed);
      EXPECT_EQ(stats.staleness_values.size(), stats.weights.size());
      if (!stats.traces_truncated) {
        EXPECT_EQ(stats.staleness_values.size(), stats.processed);
      }
    }
  });
  constexpr std::size_t kJobs = 300;
  std::size_t submitted = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    GradientJob job = env.unit_job(env.server->version());
    if (env.server->try_submit(job).accepted) ++submitted;
  }
  env.server->drain();
  stop.store(true, std::memory_order_release);
  poller.join();
  EXPECT_EQ(env.server->stats().processed, submitted);
  env.server->stop();
}

}  // namespace
}  // namespace fleet::runtime
