#include "fleet/runtime/parallel_fleet.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "../test_util.hpp"
#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/runtime/fault.hpp"

namespace fleet::runtime {
namespace {

using test::param_hash;
using test::pretrained_iprof;

/// Self-contained concurrent-serving environment, constructed identically
/// every time so determinism tests can compare independent instances.
struct FleetEnv {
  explicit FleetEnv(const RuntimeConfig& runtime = {})
      : split(data::generate_synthetic_images([] {
          data::SyntheticImageConfig cfg;
          cfg.n_classes = 4;
          cfg.n_train = 400;
          cfg.n_test = 100;
          return cfg;
        }())) {
    model = nn::zoo::small_cnn(1, 14, 14, 4);
    model->init(1);
    core::ServerConfig config;
    config.learning_rate = 0.05f;
    server = std::make_unique<ConcurrentFleetServer>(
        *model, pretrained_iprof(), config, runtime);

    stats::Rng rng(2);
    const auto partition = data::partition_iid(split.train.size(), 8, rng);
    const auto fleet = device::lab_fleet();
    for (std::size_t u = 0; u < partition.size(); ++u) {
      auto replica = nn::zoo::small_cnn(1, 14, 14, 4);
      replica->init(1);
      workers.emplace_back(static_cast<int>(u), std::move(replica),
                           split.train, partition[u],
                           device::spec(fleet[u % fleet.size()]), 100 + u);
    }
  }

  std::uint64_t run_and_hash(const ParallelFleet::Config& cfg,
                             ParallelFleet::Stats* out = nullptr) {
    ParallelFleet fleet(*server, workers, cfg);
    const auto stats = fleet.run();
    if (out != nullptr) *out = stats;
    server->stop();
    return param_hash(model->parameters_view());
  }

  data::TrainTestSplit split;
  std::unique_ptr<nn::Sequential> model;
  std::unique_ptr<ConcurrentFleetServer> server;
  std::vector<core::FleetWorker> workers;
};

ParallelFleet::Config base_config() {
  ParallelFleet::Config cfg;
  cfg.n_threads = 2;
  cfg.rounds = 6;
  cfg.max_arrival_delay = 2;
  cfg.seed = 11;
  return cfg;
}

TEST(ParallelFleetTest, RunsAndUpdatesModel) {
  FleetEnv env;
  ParallelFleet::Stats stats;
  env.run_and_hash(base_config(), &stats);
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.gradients_submitted, 0u);
  EXPECT_EQ(stats.runtime.processed, stats.gradients_submitted);
  EXPECT_GT(stats.runtime.model_updates, 0u);
  EXPECT_EQ(stats.runtime.model_updates, env.server->version());
  EXPECT_EQ(stats.runtime.invalid_jobs, 0u);
}

TEST(ParallelFleetTest, StalenessEmergesFromArrivalDelay) {
  FleetEnv env;
  ParallelFleet::Stats stats;
  env.run_and_hash(base_config(), &stats);
  ASSERT_FALSE(stats.runtime.staleness_values.empty());
  double max_tau = 0.0;
  for (double tau : stats.runtime.staleness_values) {
    EXPECT_GE(tau, 0.0);
    max_tau = std::max(max_tau, tau);
  }
  // Delayed arrivals land after other workers advanced the clock.
  EXPECT_GT(max_tau, 0.0);
}

TEST(ParallelFleetTest, SameSeedSameThreadsIsBitwiseReproducible) {
  FleetEnv a;
  FleetEnv b;
  const auto hash_a = a.run_and_hash(base_config());
  const auto hash_b = b.run_and_hash(base_config());
  EXPECT_EQ(hash_a, hash_b);
}

TEST(ParallelFleetTest, FinalModelIsThreadCountInvariant) {
  // Stronger than the headline guarantee ("deterministic under a fixed
  // thread count"): the phase structure pins every order-sensitive step to
  // the driver or the aggregation thread, so thread count only changes who
  // computes, never what.
  FleetEnv serial;
  FleetEnv parallel;
  auto cfg = base_config();
  cfg.n_threads = 1;
  const auto hash_1 = serial.run_and_hash(cfg);
  cfg.n_threads = 4;
  const auto hash_4 = parallel.run_and_hash(cfg);
  EXPECT_EQ(hash_1, hash_4);
}

TEST(ParallelFleetTest, DropoutLosesGradientsButNotProgress) {
  FleetEnv env;
  auto cfg = base_config();
  cfg.dropout_prob = 0.5;
  cfg.rounds = 8;
  ParallelFleet::Stats stats;
  env.run_and_hash(cfg, &stats);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.gradients_submitted, 0u);
  EXPECT_EQ(stats.runtime.processed, stats.gradients_submitted);
}

TEST(ParallelFleetTest, FinalFlushDropsAreCountedSeparatelyFromRetries) {
  // A server stopped before the drive rejects every submit permanently
  // ("ingest queue closed", non-retryable). Mid-round rejections land in
  // rejected_submissions only; delayed gradients still in flight after the
  // last round are dropped by the final flush and must ALSO show up in the
  // final_flush_drops breakdown — the split this regression pins down.
  FleetEnv env;
  env.server->stop();
  auto cfg = base_config();
  cfg.n_threads = 1;
  cfg.rounds = 1;
  cfg.max_arrival_delay = 3;
  ParallelFleet::Stats stats;
  env.run_and_hash(cfg, &stats);
  EXPECT_EQ(stats.gradients_submitted, 0u);
  EXPECT_GT(stats.rejected_submissions, 0u);
  EXPECT_GT(stats.final_flush_drops, 0u);
  EXPECT_LE(stats.final_flush_drops, stats.rejected_submissions);
  // Non-retryable rejects never loop: no retries anywhere.
  EXPECT_EQ(stats.backpressure_retries, 0u);
  EXPECT_EQ(stats.final_flush_retries, 0u);
  EXPECT_EQ(stats.runtime.processed, 0u);
}

TEST(ParallelFleetTest, FinalFlushRetriesAreCountedSeparatelyFromDrops) {
  // Self-calibrating: a probe drive with an UNARMED injector counts the
  // try_submit calls (the kQueueFull site advances its trigger on every
  // submit even when unarmed), then a second identical drive arms a
  // two-fire queue-full plan on the LAST trigger index. The final gradient
  // is refused retryably twice and must succeed on the third attempt —
  // with at least one of those retries attributed to the final flush.
  auto cfg = base_config();
  cfg.n_threads = 1;
  cfg.rounds = 1;
  cfg.max_arrival_delay = 3;

  FaultInjector probe(0);
  RuntimeConfig probe_runtime;
  probe_runtime.fault_injector = &probe;
  FleetEnv probe_env(probe_runtime);
  ParallelFleet::Stats probe_stats;
  probe_env.run_and_hash(cfg, &probe_stats);
  const std::uint64_t submits = probe.triggers(FaultSite::kQueueFull);
  ASSERT_GT(submits, 0u);
  ASSERT_EQ(probe.fires(FaultSite::kQueueFull), 0u);
  ASSERT_EQ(probe_stats.backpressure_retries, 0u);

  FaultInjector fault(0);
  FaultPlan plan;
  plan.site = FaultSite::kQueueFull;
  plan.every = 1;
  plan.after = submits - 1;  // the probe's last submit call
  plan.max_fires = 2;
  fault.arm(plan);
  RuntimeConfig runtime;
  runtime.fault_injector = &fault;
  FleetEnv env(runtime);
  ParallelFleet::Stats stats;
  env.run_and_hash(cfg, &stats);
  EXPECT_EQ(fault.fires(FaultSite::kQueueFull), 2u);
  EXPECT_EQ(stats.backpressure_retries, 2u);
  // A mid-round retryable reject parks the job for the flush, so however
  // the two fires split across phases the flush absorbs the tail.
  EXPECT_GE(stats.final_flush_retries, 1u);
  EXPECT_LE(stats.final_flush_retries, 2u);
  EXPECT_EQ(stats.final_flush_drops, 0u);
  EXPECT_EQ(stats.rejected_submissions, 0u);
  // The retried gradient was delivered, not lost: same totals as the probe.
  EXPECT_EQ(stats.gradients_submitted, probe_stats.gradients_submitted);
  EXPECT_EQ(stats.runtime.processed, stats.gradients_submitted);
}

TEST(ParallelFleetTest, RejectsBadConfig) {
  FleetEnv env;
  auto cfg = base_config();
  cfg.n_threads = 0;
  EXPECT_THROW(ParallelFleet(*env.server, env.workers, cfg),
               std::invalid_argument);
  cfg = base_config();
  cfg.dropout_prob = 1.5;
  EXPECT_THROW(ParallelFleet(*env.server, env.workers, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace fleet::runtime
