#include "fleet/runtime/sharded_aggregator.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "../test_util.hpp"
#include "fleet/stats/rng.hpp"
#include "fleet/tensor/ops.hpp"

namespace fleet::runtime {
namespace {

using test::bitwise_equal;

constexpr std::size_t kParams = 11;  // deliberately not divisible by shards
constexpr std::size_t kClasses = 3;
constexpr float kLr = 0.05f;

learning::AsyncAggregator::Config agg_config(std::size_t k) {
  learning::AsyncAggregator::Config cfg;
  cfg.aggregation_k = k;
  return cfg;
}

/// A reproducible sequence of worker updates with varied gradients,
/// staleness and label mixes. Storage outlives the returned views.
struct UpdateSet {
  std::vector<std::vector<float>> gradients;
  std::vector<learning::WorkerUpdate> updates;
};

UpdateSet make_updates(std::size_t count, std::uint64_t seed) {
  UpdateSet set;
  stats::Rng rng(seed);
  set.gradients.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto& grad = set.gradients.emplace_back(kParams);
    for (float& g : grad) g = static_cast<float>(rng.gaussian(0.0, 1.0));
    learning::WorkerUpdate update;
    update.gradient = grad;
    update.staleness = static_cast<double>(rng.uniform_int(0, 6));
    update.label_dist = stats::LabelDistribution(kClasses);
    update.label_dist.add(static_cast<int>(rng.uniform_int(0, kClasses - 1)),
                          1 + static_cast<std::size_t>(rng.uniform_int(0, 4)));
    update.mini_batch = 8;
    set.updates.push_back(update);
  }
  return set;
}

/// Sequential reference: submit() + full-arena apply, the serial fold.
std::vector<float> sequential_fold(const UpdateSet& set, std::size_t k,
                                   std::vector<double>* weights = nullptr) {
  learning::AsyncAggregator agg(kParams, kClasses, agg_config(k));
  std::vector<float> params(kParams, 0.25f);
  for (const auto& update : set.updates) {
    const auto result = agg.submit(update);
    if (weights != nullptr) weights->push_back(result.weight);
    if (result.aggregate) {
      tensor::axpy(-kLr, *result.aggregate, std::span<float>(params));
    }
  }
  return params;
}

FoldContext context_of(learning::AsyncAggregator& agg,
                       std::vector<float>& params) {
  FoldContext ctx;
  ctx.aggregator = &agg;
  ctx.parameters = std::span<float>(params);
  return ctx;
}

/// Planned + sharded fold of the same updates, split into batches of
/// `batch` submissions per execute() call.
std::vector<float> sharded_fold(const UpdateSet& set, std::size_t k,
                                std::size_t shards, std::size_t batch,
                                std::vector<double>* weights = nullptr) {
  learning::AsyncAggregator agg(kParams, kClasses, agg_config(k));
  std::vector<float> params(kParams, 0.25f);
  ShardedAggregator sharded(shards);
  const FoldContext ctx = context_of(agg, params);
  std::vector<FoldOp> plan;
  std::size_t in_batch = 0;
  for (const auto& update : set.updates) {
    const auto planned = agg.plan_submit(update);
    if (weights != nullptr) weights->push_back(planned.weight);
    FoldOp fold;
    fold.gradient = update.gradient;
    fold.weight = planned.weight;
    plan.push_back(fold);
    if (planned.flush) {
      FoldOp apply;
      apply.kind = FoldOp::Kind::kFlushApply;
      apply.learning_rate = kLr;
      plan.push_back(apply);
    }
    if (++in_batch == batch) {
      sharded.execute(ctx, plan);
      plan.clear();
      in_batch = 0;
    }
  }
  sharded.execute(ctx, plan);  // tail batch (no-op when empty)
  return params;
}

TEST(ShardedAggregatorTest, RejectsBadConstructionAndMismatchedContext) {
  EXPECT_THROW(ShardedAggregator(0), std::invalid_argument);
  // A context whose arena does not match its aggregator is refused at
  // execute() time (the pool itself is model-agnostic).
  learning::AsyncAggregator agg(kParams, kClasses, agg_config(1));
  std::vector<float> wrong(kParams - 1, 0.0f);
  ShardedAggregator sharded(2);
  std::vector<FoldOp> plan(1);
  EXPECT_THROW(sharded.execute(context_of(agg, wrong), plan),
               std::invalid_argument);
}

TEST(ShardedAggregatorTest, SpansPartitionTheArenaContiguously) {
  for (std::size_t shards : {1u, 2u, 3u, 5u, 16u}) {
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto [begin, end] = ShardedAggregator::span_of(kParams, shards, s);
      EXPECT_EQ(begin, cursor);
      EXPECT_LE(begin, end);
      cursor = end;
    }
    EXPECT_EQ(cursor, kParams);  // every index owned exactly once
  }
}

TEST(ShardedAggregatorTest, OnePoolServesManyContexts) {
  // Multi-tenant shape (DESIGN.md §7): one shared worker pool alternating
  // between two independent (aggregator, arena) contexts of different
  // sizes must fold each exactly as a dedicated pool would.
  const UpdateSet set_a = make_updates(12, 7);
  const auto ref_a = sharded_fold(set_a, /*k=*/3, /*shards=*/3, /*batch=*/4);

  constexpr std::size_t kParamsB = 29;
  learning::AsyncAggregator agg_a(kParams, kClasses, agg_config(3));
  learning::AsyncAggregator agg_b(kParamsB, kClasses, agg_config(1));
  std::vector<float> params_a(kParams, 0.25f);
  std::vector<float> params_b(kParamsB, -0.5f);
  std::vector<float> solo_b(kParamsB, -0.5f);

  // Reference for B: sequential submit + apply on a copy.
  std::vector<std::vector<float>> grads_b;
  stats::Rng rng(41);
  for (std::size_t i = 0; i < 10; ++i) {
    auto& grad = grads_b.emplace_back(kParamsB);
    for (float& g : grad) g = static_cast<float>(rng.gaussian(0.0, 1.0));
  }
  {
    learning::AsyncAggregator agg_ref(kParamsB, kClasses, agg_config(1));
    for (const auto& grad : grads_b) {
      learning::WorkerUpdate update;
      update.gradient = grad;
      update.label_dist = stats::LabelDistribution(kClasses);
      update.mini_batch = 8;
      const auto result = agg_ref.submit(update);
      ASSERT_TRUE(result.aggregate.has_value());
      tensor::axpy(-kLr, *result.aggregate, std::span<float>(solo_b));
    }
  }

  ShardedAggregator pool(3);
  const FoldContext ctx_a = context_of(agg_a, params_a);
  const FoldContext ctx_b = context_of(agg_b, params_b);
  std::size_t b_cursor = 0;
  // Plan and execute one B gradient on the shared pool (K = 1: every
  // submission flushes).
  const auto fold_one_b = [&] {
    learning::WorkerUpdate update_b;
    update_b.gradient = grads_b[b_cursor];
    update_b.label_dist = stats::LabelDistribution(kClasses);
    update_b.mini_batch = 8;
    const auto planned_b = agg_b.plan_submit(update_b);
    ASSERT_TRUE(planned_b.flush);
    std::vector<FoldOp> plan_b;
    FoldOp fold_b;
    fold_b.gradient = grads_b[b_cursor];
    fold_b.weight = planned_b.weight;
    plan_b.push_back(fold_b);
    FoldOp apply_b;
    apply_b.kind = FoldOp::Kind::kFlushApply;
    apply_b.learning_rate = kLr;
    plan_b.push_back(apply_b);
    pool.execute(ctx_b, plan_b);
    ++b_cursor;
  };
  std::vector<FoldOp> plan_a;
  std::size_t in_batch = 0;
  for (const auto& update : set_a.updates) {
    const auto planned = agg_a.plan_submit(update);
    FoldOp fold;
    fold.gradient = update.gradient;
    fold.weight = planned.weight;
    plan_a.push_back(fold);
    if (planned.flush) {
      FoldOp apply;
      apply.kind = FoldOp::Kind::kFlushApply;
      apply.learning_rate = kLr;
      plan_a.push_back(apply);
    }
    if (++in_batch == 4) {
      pool.execute(ctx_a, plan_a);
      plan_a.clear();
      in_batch = 0;
      // Interleave a B fold between A batches on the same pool.
      if (b_cursor < grads_b.size()) fold_one_b();
    }
  }
  pool.execute(ctx_a, plan_a);
  while (b_cursor < grads_b.size()) fold_one_b();

  EXPECT_TRUE(bitwise_equal(ref_a, params_a));
  EXPECT_TRUE(bitwise_equal(solo_b, params_b));
}

TEST(ShardedAggregatorTest, BitwiseIdenticalToSequentialForAnyShardCount) {
  const UpdateSet set = make_updates(24, 7);
  std::vector<double> seq_weights;
  const auto reference = sequential_fold(set, /*k=*/3, &seq_weights);
  for (std::size_t shards : {1u, 2u, 3u, 5u, 16u}) {
    std::vector<double> weights;
    const auto folded = sharded_fold(set, 3, shards, /*batch=*/4, &weights);
    EXPECT_TRUE(bitwise_equal(reference, folded)) << "shards=" << shards;
    EXPECT_EQ(weights, seq_weights) << "shards=" << shards;
  }
}

TEST(ShardedAggregatorTest, BitwiseIdenticalForAnyBatchSize) {
  const UpdateSet set = make_updates(25, 13);
  const auto reference = sequential_fold(set, /*k=*/2);
  for (std::size_t batch : {1u, 2u, 7u, 25u, 100u}) {
    const auto folded = sharded_fold(set, 2, /*shards=*/3, batch);
    EXPECT_TRUE(bitwise_equal(reference, folded)) << "batch=" << batch;
  }
}

TEST(ShardedAggregatorTest, WorkerPoolSurvivesManyBarriers) {
  // One execute() per submission: the persistent pool must hand off and
  // barrier correctly hundreds of times in a row.
  const UpdateSet set = make_updates(200, 29);
  const auto reference = sequential_fold(set, /*k=*/1);
  const auto folded = sharded_fold(set, 1, /*shards=*/4, /*batch=*/1);
  EXPECT_TRUE(bitwise_equal(reference, folded));
}

TEST(ShardedAggregatorTest, PartitionMatchesSpanOfAndDropsEmptyTails) {
  for (std::size_t shards : {1u, 2u, 3u, 5u, 16u}) {
    const auto spans = ShardedAggregator::partition(kParams, shards);
    std::size_t cursor = 0;
    for (const FoldSpan& span : spans) {
      EXPECT_EQ(span.begin, cursor);
      EXPECT_LT(span.begin, span.end);  // empty tails are dropped
      cursor = span.end;
    }
    EXPECT_EQ(cursor, kParams);
    EXPECT_LE(spans.size(), shards);
  }
  EXPECT_TRUE(ShardedAggregator::partition(0, 4).empty());
}

TEST(ShardedAggregatorTest, SubmitValidatesContextAndLatch) {
  learning::AsyncAggregator agg(kParams, kClasses, agg_config(1));
  std::vector<float> params(kParams, 0.0f);
  ShardedAggregator pool(2);
  std::vector<FoldOp> plan(1);
  FoldLatch latch;

  // A cached partition that does not tile the arena is refused: short
  // coverage, an interior gap (right edges fine), and an overlap.
  FoldContext bad = context_of(agg, params);
  const std::vector<FoldSpan> short_spans = {FoldSpan{0, kParams - 1}};
  bad.spans = short_spans;
  EXPECT_THROW(pool.submit(bad, plan, latch), std::invalid_argument);
  const std::vector<FoldSpan> gap_spans = {FoldSpan{0, 4},
                                           FoldSpan{5, kParams}};
  bad.spans = gap_spans;
  EXPECT_THROW(pool.submit(bad, plan, latch), std::invalid_argument);
  const std::vector<FoldSpan> overlap_spans = {FoldSpan{0, 5},
                                               FoldSpan{4, kParams}};
  bad.spans = overlap_spans;
  EXPECT_THROW(pool.submit(bad, plan, latch), std::invalid_argument);
  EXPECT_TRUE(latch.done());

  // An empty plan never arms the latch.
  pool.submit(context_of(agg, params), {}, latch);
  EXPECT_TRUE(latch.done());
  pool.wait(latch);  // trivially returns
}

/// Scheduler core (DESIGN.md §9): many sessions' plans submitted back to
/// back on one pool, one latch each, waited only after all were queued —
/// cross-context concurrency must leave every context bitwise identical
/// to its dedicated-pool fold.
TEST(ShardedAggregatorTest, ConcurrentCrossContextSubmissionsStayBitwise) {
  constexpr std::size_t kContexts = 5;
  constexpr std::size_t kRounds = 40;

  // References: each context folded alone (the solo sequential path).
  std::vector<UpdateSet> sets;
  std::vector<std::vector<float>> references;
  for (std::size_t c = 0; c < kContexts; ++c) {
    sets.push_back(make_updates(kRounds, 100 + c));
    references.push_back(sequential_fold(sets[c], /*k=*/2));
  }

  // One shared pool, all contexts in flight per round: plan one update
  // per context, submit all plans, then wait all latches.
  std::vector<std::unique_ptr<learning::AsyncAggregator>> aggs;
  std::vector<std::vector<float>> params;
  for (std::size_t c = 0; c < kContexts; ++c) {
    aggs.push_back(std::make_unique<learning::AsyncAggregator>(
        kParams, kClasses, agg_config(2)));
    params.emplace_back(kParams, 0.25f);
  }
  ShardedAggregator pool(3);
  std::vector<std::vector<FoldOp>> plans(kContexts);
  std::vector<FoldLatch> latches(kContexts);
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t c = 0; c < kContexts; ++c) {
      plans[c].clear();
      const auto& update = sets[c].updates[round];
      const auto planned = aggs[c]->plan_submit(update);
      FoldOp fold;
      fold.gradient = update.gradient;
      fold.weight = planned.weight;
      plans[c].push_back(fold);
      if (planned.flush) {
        FoldOp apply;
        apply.kind = FoldOp::Kind::kFlushApply;
        apply.learning_rate = kLr;
        plans[c].push_back(apply);
      }
    }
    for (std::size_t c = 0; c < kContexts; ++c) {
      pool.submit(context_of(*aggs[c], params[c]), plans[c], latches[c]);
    }
    for (std::size_t c = 0; c < kContexts; ++c) pool.wait(latches[c]);
  }

  for (std::size_t c = 0; c < kContexts; ++c) {
    EXPECT_TRUE(bitwise_equal(references[c], params[c])) << "context " << c;
  }
  // Occupancy: every (context, span) task ran — 3 spans per plan — and a
  // submit instant always has at least its own plan's tasks in flight.
  const auto stats = pool.pool_stats();
  EXPECT_EQ(stats.tasks_executed, kContexts * kRounds * 3);
  EXPECT_GE(stats.peak_pending, 3u);
}

TEST(ShardedAggregatorTest, CachedSpanPartitionFoldsIdentically) {
  // A context carrying its cached partition folds exactly like one whose
  // partition the scheduler derives per submission.
  const UpdateSet set = make_updates(24, 7);
  const auto reference = sharded_fold(set, /*k=*/3, /*shards=*/3, /*batch=*/4);

  learning::AsyncAggregator agg(kParams, kClasses, agg_config(3));
  std::vector<float> params(kParams, 0.25f);
  const auto spans = ShardedAggregator::partition(kParams, 3);
  ShardedAggregator pool(3);
  FoldContext ctx = context_of(agg, params);
  ctx.spans = spans;
  std::vector<FoldOp> plan;
  std::size_t in_batch = 0;
  for (const auto& update : set.updates) {
    const auto planned = agg.plan_submit(update);
    FoldOp fold;
    fold.gradient = update.gradient;
    fold.weight = planned.weight;
    plan.push_back(fold);
    if (planned.flush) {
      FoldOp apply;
      apply.kind = FoldOp::Kind::kFlushApply;
      apply.learning_rate = kLr;
      plan.push_back(apply);
    }
    if (++in_batch == 4) {
      pool.execute(ctx, plan);
      plan.clear();
      in_batch = 0;
    }
  }
  pool.execute(ctx, plan);
  EXPECT_TRUE(bitwise_equal(reference, params));
}

TEST(ShardedAggregatorTest, PinnedWorkersFoldIdentically) {
  // Pinning is a locality hint only — results must not move by a bit.
  const UpdateSet set = make_updates(24, 31);
  const auto reference = sequential_fold(set, /*k=*/2);
  learning::AsyncAggregator agg(kParams, kClasses, agg_config(2));
  std::vector<float> params(kParams, 0.25f);
  ShardedAggregator pool(4, /*worker_cpus=*/{0, 1, 2});
  const FoldContext ctx = context_of(agg, params);
  std::vector<FoldOp> plan;
  for (const auto& update : set.updates) {
    const auto planned = agg.plan_submit(update);
    FoldOp fold;
    fold.gradient = update.gradient;
    fold.weight = planned.weight;
    plan.push_back(fold);
    if (planned.flush) {
      FoldOp apply;
      apply.kind = FoldOp::Kind::kFlushApply;
      apply.learning_rate = kLr;
      plan.push_back(apply);
    }
  }
  pool.execute(ctx, plan);
  EXPECT_TRUE(bitwise_equal(reference, params));
}

}  // namespace
}  // namespace fleet::runtime
