#include "fleet/runtime/sharded_aggregator.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fleet/stats/rng.hpp"
#include "fleet/tensor/ops.hpp"

namespace fleet::runtime {
namespace {

constexpr std::size_t kParams = 11;  // deliberately not divisible by shards
constexpr std::size_t kClasses = 3;
constexpr float kLr = 0.05f;

learning::AsyncAggregator::Config agg_config(std::size_t k) {
  learning::AsyncAggregator::Config cfg;
  cfg.aggregation_k = k;
  return cfg;
}

/// A reproducible sequence of worker updates with varied gradients,
/// staleness and label mixes. Storage outlives the returned views.
struct UpdateSet {
  std::vector<std::vector<float>> gradients;
  std::vector<learning::WorkerUpdate> updates;
};

UpdateSet make_updates(std::size_t count, std::uint64_t seed) {
  UpdateSet set;
  stats::Rng rng(seed);
  set.gradients.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto& grad = set.gradients.emplace_back(kParams);
    for (float& g : grad) g = static_cast<float>(rng.gaussian(0.0, 1.0));
    learning::WorkerUpdate update;
    update.gradient = grad;
    update.staleness = static_cast<double>(rng.uniform_int(0, 6));
    update.label_dist = stats::LabelDistribution(kClasses);
    update.label_dist.add(static_cast<int>(rng.uniform_int(0, kClasses - 1)),
                          1 + static_cast<std::size_t>(rng.uniform_int(0, 4)));
    update.mini_batch = 8;
    set.updates.push_back(update);
  }
  return set;
}

/// Sequential reference: submit() + full-arena apply, the serial fold.
std::vector<float> sequential_fold(const UpdateSet& set, std::size_t k,
                                   std::vector<double>* weights = nullptr) {
  learning::AsyncAggregator agg(kParams, kClasses, agg_config(k));
  std::vector<float> params(kParams, 0.25f);
  for (const auto& update : set.updates) {
    const auto result = agg.submit(update);
    if (weights != nullptr) weights->push_back(result.weight);
    if (result.aggregate) {
      tensor::axpy(-kLr, *result.aggregate, std::span<float>(params));
    }
  }
  return params;
}

/// Planned + sharded fold of the same updates, split into batches of
/// `batch` submissions per execute() call.
std::vector<float> sharded_fold(const UpdateSet& set, std::size_t k,
                                std::size_t shards, std::size_t batch,
                                std::vector<double>* weights = nullptr) {
  learning::AsyncAggregator agg(kParams, kClasses, agg_config(k));
  std::vector<float> params(kParams, 0.25f);
  ShardedAggregator sharded(agg, params, shards);
  std::vector<FoldOp> plan;
  std::size_t in_batch = 0;
  for (const auto& update : set.updates) {
    const auto planned = agg.plan_submit(update);
    if (weights != nullptr) weights->push_back(planned.weight);
    FoldOp fold;
    fold.gradient = update.gradient;
    fold.weight = planned.weight;
    plan.push_back(fold);
    if (planned.flush) {
      FoldOp apply;
      apply.kind = FoldOp::Kind::kFlushApply;
      apply.learning_rate = kLr;
      plan.push_back(apply);
    }
    if (++in_batch == batch) {
      sharded.execute(plan);
      plan.clear();
      in_batch = 0;
    }
  }
  sharded.execute(plan);  // tail batch (no-op when empty)
  return params;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(ShardedAggregatorTest, RejectsBadConstruction) {
  learning::AsyncAggregator agg(kParams, kClasses, agg_config(1));
  std::vector<float> params(kParams, 0.0f);
  EXPECT_THROW(ShardedAggregator(agg, params, 0), std::invalid_argument);
  std::vector<float> wrong(kParams - 1, 0.0f);
  EXPECT_THROW(ShardedAggregator(agg, wrong, 2), std::invalid_argument);
}

TEST(ShardedAggregatorTest, SpansPartitionTheArenaContiguously) {
  learning::AsyncAggregator agg(kParams, kClasses, agg_config(1));
  std::vector<float> params(kParams, 0.0f);
  for (std::size_t shards : {1u, 2u, 3u, 5u, 16u}) {
    ShardedAggregator sharded(agg, params, shards);
    ASSERT_EQ(sharded.shard_count(), shards);
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto [begin, end] = sharded.span_of(s);
      EXPECT_EQ(begin, cursor);
      EXPECT_LE(begin, end);
      cursor = end;
    }
    EXPECT_EQ(cursor, kParams);  // every index owned exactly once
  }
}

TEST(ShardedAggregatorTest, BitwiseIdenticalToSequentialForAnyShardCount) {
  const UpdateSet set = make_updates(24, 7);
  std::vector<double> seq_weights;
  const auto reference = sequential_fold(set, /*k=*/3, &seq_weights);
  for (std::size_t shards : {1u, 2u, 3u, 5u, 16u}) {
    std::vector<double> weights;
    const auto folded = sharded_fold(set, 3, shards, /*batch=*/4, &weights);
    EXPECT_TRUE(bitwise_equal(reference, folded)) << "shards=" << shards;
    EXPECT_EQ(weights, seq_weights) << "shards=" << shards;
  }
}

TEST(ShardedAggregatorTest, BitwiseIdenticalForAnyBatchSize) {
  const UpdateSet set = make_updates(25, 13);
  const auto reference = sequential_fold(set, /*k=*/2);
  for (std::size_t batch : {1u, 2u, 7u, 25u, 100u}) {
    const auto folded = sharded_fold(set, 2, /*shards=*/3, batch);
    EXPECT_TRUE(bitwise_equal(reference, folded)) << "batch=" << batch;
  }
}

TEST(ShardedAggregatorTest, WorkerPoolSurvivesManyBarriers) {
  // One execute() per submission: the persistent pool must hand off and
  // barrier correctly hundreds of times in a row.
  const UpdateSet set = make_updates(200, 29);
  const auto reference = sequential_fold(set, /*k=*/1);
  const auto folded = sharded_fold(set, 1, /*shards=*/4, /*batch=*/1);
  EXPECT_TRUE(bitwise_equal(reference, folded));
}

}  // namespace
}  // namespace fleet::runtime
