#include "fleet/data/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fleet::data {
namespace {

std::vector<int> cyclic_labels(std::size_t n, int classes) {
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i) % classes;
  }
  return labels;
}

TEST(PartitionTest, IidCoversAllSamplesExactlyOnce) {
  stats::Rng rng(1);
  const auto partition = partition_iid(100, 7, rng);
  EXPECT_EQ(partition.size(), 7u);
  std::set<std::size_t> seen;
  for (const auto& user : partition) {
    for (std::size_t idx : user) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(PartitionTest, IidBalancedWithinOne) {
  stats::Rng rng(2);
  const auto partition = partition_iid(103, 10, rng);
  for (const auto& user : partition) {
    EXPECT_GE(user.size(), 10u);
    EXPECT_LE(user.size(), 11u);
  }
}

TEST(PartitionTest, NonIidCoversAllSamples) {
  stats::Rng rng(3);
  const auto labels = cyclic_labels(600, 10);
  const auto partition = partition_noniid_shards(labels, 30, 2, rng);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& user : partition) {
    total += user.size();
    for (std::size_t idx : user) seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), total);  // disjoint
  EXPECT_EQ(total, 600u);         // complete
}

TEST(PartitionTest, NonIidUsersHoldFewLabels) {
  // The McMahan scheme with 2 shards/user gives each user at most ~2-3
  // distinct labels; that skew is what makes the data non-IID.
  stats::Rng rng(4);
  const auto labels = cyclic_labels(2000, 10);
  const auto partition = partition_noniid_shards(labels, 50, 2, rng);
  const auto counts = partition_label_counts(partition, labels, 10);
  double avg_distinct = 0.0;
  for (const auto& user : counts) {
    avg_distinct += static_cast<double>(
        std::count_if(user.begin(), user.end(),
                      [](std::size_t c) { return c > 0; }));
  }
  avg_distinct /= static_cast<double>(counts.size());
  EXPECT_LE(avg_distinct, 3.5);
}

TEST(PartitionTest, IidUsersHoldAllLabels) {
  stats::Rng rng(5);
  const auto labels = cyclic_labels(2000, 10);
  const auto partition = partition_iid(2000, 20, rng);
  const auto counts = partition_label_counts(partition, labels, 10);
  for (const auto& user : counts) {
    const auto distinct = std::count_if(
        user.begin(), user.end(), [](std::size_t c) { return c > 0; });
    EXPECT_GE(distinct, 8);
  }
}

TEST(PartitionTest, RejectsDegenerateConfigs) {
  stats::Rng rng(6);
  EXPECT_THROW(partition_iid(10, 0, rng), std::invalid_argument);
  EXPECT_THROW(partition_iid(5, 10, rng), std::invalid_argument);
  const auto labels = cyclic_labels(10, 2);
  EXPECT_THROW(partition_noniid_shards(labels, 10, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(partition_noniid_shards(labels, 0, 2, rng),
               std::invalid_argument);
}

TEST(PartitionTest, LabelCountsRejectOutOfRangeLabel) {
  stats::Rng rng(7);
  const std::vector<int> labels{0, 1, 9};
  Partition partition{{0, 1, 2}};
  EXPECT_THROW(partition_label_counts(partition, labels, 2),
               std::out_of_range);
}

/// Parameterized sweep over user counts: both schemes must always produce
/// disjoint, complete partitions.
class PartitionPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionPropertyTest, DisjointAndComplete) {
  const std::size_t users = GetParam();
  stats::Rng rng(100 + users);
  const auto labels = cyclic_labels(1200, 10);
  for (const auto& partition :
       {partition_iid(1200, users, rng),
        partition_noniid_shards(labels, users, 2, rng)}) {
    std::set<std::size_t> seen;
    std::size_t total = 0;
    for (const auto& user : partition) {
      EXPECT_FALSE(user.empty());
      total += user.size();
      for (std::size_t idx : user) {
        EXPECT_LT(idx, 1200u);
        seen.insert(idx);
      }
    }
    EXPECT_EQ(seen.size(), total);
    EXPECT_EQ(total, 1200u);
  }
}

INSTANTIATE_TEST_SUITE_P(UserCounts, PartitionPropertyTest,
                         ::testing::Values(1, 2, 5, 10, 25, 60, 100));

}  // namespace
}  // namespace fleet::data
