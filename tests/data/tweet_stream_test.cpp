#include "fleet/data/tweet_stream.hpp"

#include <gtest/gtest.h>

#include <map>

namespace fleet::data {
namespace {

TweetStreamConfig small_config() {
  TweetStreamConfig cfg;
  cfg.days = 2.0;
  cfg.tweets_per_hour = 60.0;
  cfg.n_hashtags = 30;
  cfg.vocab_size = 100;
  cfg.n_users = 10;
  return cfg;
}

TEST(TweetStreamTest, TweetsAreSortedAndInRange) {
  TweetStream stream(small_config());
  ASSERT_FALSE(stream.tweets().empty());
  double prev = -1.0;
  for (const Tweet& tw : stream.tweets()) {
    EXPECT_GE(tw.time_s, prev);
    prev = tw.time_s;
    EXPECT_LT(tw.time_s, 2.0 * 24.0 * 3600.0);
    EXPECT_GE(tw.user, 0);
    EXPECT_LT(tw.user, 10);
    EXPECT_FALSE(tw.tokens.empty());
    EXPECT_FALSE(tw.hashtags.empty());
    for (int tok : tw.tokens) {
      EXPECT_GE(tok, 0);
      EXPECT_LT(tok, 100);
    }
    for (int h : tw.hashtags) {
      EXPECT_GE(h, 0);
      EXPECT_LT(h, 30);
    }
  }
}

TEST(TweetStreamTest, DeterministicInSeed) {
  TweetStream a(small_config()), b(small_config());
  ASSERT_EQ(a.tweets().size(), b.tweets().size());
  for (std::size_t i = 0; i < a.tweets().size(); ++i) {
    EXPECT_EQ(a.tweets()[i].time_s, b.tweets()[i].time_s);
    EXPECT_EQ(a.tweets()[i].tokens, b.tweets()[i].tokens);
  }
}

TEST(TweetStreamTest, WindowSelectsHalfOpenInterval) {
  TweetStream stream(small_config());
  const auto window = stream.window(3600.0, 7200.0);
  for (const Tweet* tw : window) {
    EXPECT_GE(tw->time_s, 3600.0);
    EXPECT_LT(tw->time_s, 7200.0);
  }
  // Windows tile the stream.
  std::size_t total = 0;
  for (double t = 0.0; t < 48.0 * 3600.0; t += 3600.0) {
    total += stream.window(t, t + 3600.0).size();
  }
  EXPECT_EQ(total, stream.tweets().size());
}

TEST(TweetStreamTest, ToSamplesExpandsMultiHashtagTweets) {
  TweetStream stream(small_config());
  const auto window = stream.window(0.0, 48.0 * 3600.0);
  const auto samples = TweetStream::to_samples(window);
  std::size_t expected = 0;
  for (const Tweet* tw : window) expected += tw->hashtags.size();
  EXPECT_EQ(samples.size(), expected);
}

TEST(TweetStreamTest, MostPopularRanksByFrequency) {
  TweetStream stream(small_config());
  const auto top = stream.most_popular(0.0, 24.0 * 3600.0, 5);
  EXPECT_LE(top.size(), 5u);
  // Verify ordering against a manual count.
  std::map<int, std::size_t> counts;
  for (const Tweet* tw : stream.window(0.0, 24.0 * 3600.0)) {
    for (int h : tw->hashtags) ++counts[h];
  }
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(counts[static_cast<int>(top[i - 1])],
              counts[static_cast<int>(top[i])]);
  }
}

TEST(TweetStreamTest, HashtagPopularityIsTemporal) {
  // The property Fig 6 relies on: the hot hashtags of one window overlap
  // much more with the *next* hour than with a window a day later.
  TweetStreamConfig cfg = small_config();
  cfg.days = 6.0;
  cfg.hashtag_lifetime_hours = 6.0;
  TweetStream stream(cfg);
  double near_overlap = 0.0, far_overlap = 0.0;
  int windows = 0;
  for (double t = 24 * 3600.0; t + 26.0 * 3600.0 < 6 * 24 * 3600.0;
       t += 6 * 3600.0) {
    const auto now = stream.most_popular(t, t + 3600.0, 5);
    const auto next = stream.most_popular(t + 3600.0, t + 2 * 3600.0, 5);
    const auto later = stream.most_popular(t + 25 * 3600.0,
                                           t + 26 * 3600.0, 5);
    if (now.empty() || next.empty() || later.empty()) continue;
    ++windows;
    for (std::size_t h : now) {
      if (std::find(next.begin(), next.end(), h) != next.end()) {
        near_overlap += 1.0;
      }
      if (std::find(later.begin(), later.end(), h) != later.end()) {
        far_overlap += 1.0;
      }
    }
  }
  ASSERT_GT(windows, 3);
  EXPECT_GT(near_overlap, far_overlap);
}

TEST(TweetStreamTest, TokensCorrelateWithHashtags) {
  // Tweets of the same hashtag share topic words far more often than
  // tweets of different hashtags — the signal the RNN learns.
  TweetStream stream(small_config());
  std::map<int, std::map<int, int>> token_counts;  // hashtag -> token -> n
  for (const Tweet& tw : stream.tweets()) {
    for (int tok : tw.tokens) ++token_counts[tw.hashtags[0]][tok];
  }
  // For hashtags with enough tweets, the top token should cover >> 1/vocab
  // of occurrences.
  int checked = 0;
  for (const auto& [hashtag, counts] : token_counts) {
    int total = 0, best = 0;
    for (const auto& [tok, n] : counts) {
      total += n;
      best = std::max(best, n);
    }
    if (total < 50) continue;
    ++checked;
    EXPECT_GT(static_cast<double>(best) / total, 3.0 / 100.0);
  }
  EXPECT_GT(checked, 0);
}

TEST(TweetStreamTest, RejectsBadConfig) {
  TweetStreamConfig cfg = small_config();
  cfg.n_hashtags = 0;
  EXPECT_THROW(TweetStream{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.topic_word_prob = 1.5;
  EXPECT_THROW(TweetStream{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace fleet::data
