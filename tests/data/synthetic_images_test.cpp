#include "fleet/data/synthetic_images.hpp"

#include <gtest/gtest.h>

#include "fleet/nn/zoo.hpp"

namespace fleet::data {
namespace {

TEST(SyntheticImagesTest, ShapesAndCardinalities) {
  SyntheticImageConfig cfg;
  cfg.n_classes = 5;
  cfg.n_train = 100;
  cfg.n_test = 40;
  const auto split = generate_synthetic_images(cfg);
  EXPECT_EQ(split.train.size(), 100u);
  EXPECT_EQ(split.test.size(), 40u);
  EXPECT_EQ(split.train.sample_shape(),
            (std::vector<std::size_t>{1, 14, 14}));
  EXPECT_EQ(split.train.n_classes(), 5u);
}

TEST(SyntheticImagesTest, DeterministicInSeed) {
  SyntheticImageConfig cfg;
  cfg.n_train = 50;
  cfg.n_test = 10;
  const auto a = generate_synthetic_images(cfg);
  const auto b = generate_synthetic_images(cfg);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.label(i), b.train.label(i));
    const auto sa = a.train.sample(i);
    const auto sb = b.train.sample(i);
    for (std::size_t j = 0; j < sa.size(); ++j) EXPECT_EQ(sa[j], sb[j]);
  }
}

TEST(SyntheticImagesTest, DifferentSeedsDiffer) {
  SyntheticImageConfig cfg;
  cfg.n_train = 10;
  cfg.n_test = 1;
  auto a = generate_synthetic_images(cfg);
  cfg.seed += 1;
  auto b = generate_synthetic_images(cfg);
  int identical = 0;
  const auto sa = a.train.sample(0);
  const auto sb = b.train.sample(0);
  for (std::size_t j = 0; j < sa.size(); ++j) {
    if (sa[j] == sb[j]) ++identical;
  }
  EXPECT_LT(identical, static_cast<int>(sa.size() / 2));
}

TEST(SyntheticImagesTest, PixelsAreMinMaxScaled) {
  const auto split =
      generate_synthetic_images(SyntheticImageConfig::mnist_like());
  for (std::size_t i = 0; i < 20; ++i) {
    for (float v : split.train.sample(i)) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(SyntheticImagesTest, AllClassesPresentInBothSplits) {
  const auto split =
      generate_synthetic_images(SyntheticImageConfig::mnist_like());
  std::vector<int> train_counts(10, 0), test_counts(10, 0);
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    ++train_counts[static_cast<std::size_t>(split.train.label(i))];
  }
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    ++test_counts[static_cast<std::size_t>(split.test.label(i))];
  }
  for (int c = 0; c < 10; ++c) {
    EXPECT_GT(train_counts[static_cast<std::size_t>(c)], 0);
    EXPECT_GT(test_counts[static_cast<std::size_t>(c)], 0);
  }
}

TEST(SyntheticImagesTest, PresetsMatchPaperShapes) {
  const auto emnist = SyntheticImageConfig::emnist_like();
  EXPECT_EQ(emnist.n_classes, 62u);
  const auto cifar = SyntheticImageConfig::cifar100_like();
  EXPECT_EQ(cifar.n_classes, 100u);
  EXPECT_EQ(cifar.channels, 3u);
}

TEST(SyntheticImagesTest, LearnableByLinearModel) {
  // A linear softmax model must separate the prototypes far above chance —
  // the property every §3.2 experiment relies on.
  SyntheticImageConfig cfg;
  cfg.n_classes = 4;
  cfg.n_train = 400;
  cfg.n_test = 100;
  const auto split = generate_synthetic_images(cfg);
  auto model = nn::zoo::linear(split.train.sample_size(), 4);
  model->init(1);
  stats::Rng rng(2);
  for (int step = 0; step < 300; ++step) {
    const nn::Batch batch = split.train.sample_batch(32, rng);
    model->train_step(batch, 0.5f);
  }
  EXPECT_GT(evaluate_accuracy(*model, split.test), 0.6);
}

TEST(DatasetTest, MakeBatchGathersCorrectSamples) {
  Dataset ds({2}, 3);
  ds.add_sample(std::vector<float>{1, 2}, 0);
  ds.add_sample(std::vector<float>{3, 4}, 1);
  ds.add_sample(std::vector<float>{5, 6}, 2);
  const std::vector<std::size_t> idx{2, 0};
  const nn::Batch batch = ds.make_batch(idx);
  EXPECT_EQ(batch.labels, (std::vector<int>{2, 0}));
  EXPECT_EQ(batch.inputs[0], 5.0f);
  EXPECT_EQ(batch.inputs[2], 1.0f);
}

TEST(DatasetTest, RejectsBadSamples) {
  Dataset ds({2}, 2);
  EXPECT_THROW(ds.add_sample(std::vector<float>{1}, 0),
               std::invalid_argument);
  EXPECT_THROW(ds.add_sample(std::vector<float>{1, 2}, 5),
               std::out_of_range);
  EXPECT_THROW(ds.make_batch({}), std::invalid_argument);
}

TEST(DatasetTest, SampleBatchClampsToDatasetSize) {
  Dataset ds({1}, 2);
  ds.add_sample(std::vector<float>{1}, 0);
  ds.add_sample(std::vector<float>{2}, 1);
  stats::Rng rng(1);
  const nn::Batch batch = ds.sample_batch(10, rng);
  EXPECT_EQ(batch.size(), 2u);
}

}  // namespace
}  // namespace fleet::data
