// End-to-end integration: the full Fig 2 protocol — I-Prof bounds the
// workload, the controller admits, workers compute gradients on simulated
// devices, AdaSGD dampens stale updates — must actually train a model
// inside the discrete-event simulation.
#include <gtest/gtest.h>

#include <numeric>

#include "fleet/core/simulation.hpp"
#include "fleet/data/partition.hpp"
#include "fleet/data/synthetic_images.hpp"
#include "fleet/device/catalog.hpp"
#include "fleet/nn/zoo.hpp"
#include "fleet/profiler/iprof.hpp"
#include "fleet/profiler/training_data.hpp"

namespace fleet {
namespace {

TEST(IntegrationTest, FullProtocolTrainsModelEndToEnd) {
  data::SyntheticImageConfig data_cfg;
  data_cfg.n_classes = 4;
  data_cfg.n_train = 600;
  data_cfg.n_test = 150;
  const auto split = data::generate_synthetic_images(data_cfg);

  auto model = nn::zoo::small_cnn(1, 14, 14, 4);
  model->init(1);
  const double initial_accuracy = data::evaluate_accuracy(*model, split.test);

  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(
      device::training_fleet(), profiler::IProf::Config{}.slo, 42));

  core::ServerConfig server_cfg;
  server_cfg.learning_rate = 0.05f;
  server_cfg.aggregator.scheme = learning::Scheme::kAdaSgd;
  core::FleetServer server(*model, std::move(iprof), server_cfg);

  stats::Rng rng(2);
  const auto partition =
      data::partition_noniid_shards(split.train.labels(), 8, 2, rng);
  const auto fleet = device::aws_fleet();
  std::vector<core::FleetWorker> workers;
  for (std::size_t u = 0; u < partition.size(); ++u) {
    auto replica = nn::zoo::small_cnn(1, 14, 14, 4);
    replica->init(1);
    workers.emplace_back(static_cast<int>(u), std::move(replica), split.train,
                         partition[u], device::spec(fleet[u % fleet.size()]),
                         1000 + u);
  }

  core::FleetSimulation::Config sim_cfg;
  sim_cfg.duration_s = 3000.0;
  sim_cfg.think_time_mean_s = 8.0;
  core::FleetSimulation sim(server, workers, sim_cfg);
  const auto stats = sim.run();

  EXPECT_GT(stats.model_updates, 50u);
  const double final_accuracy = data::evaluate_accuracy(*model, split.test);
  EXPECT_GT(final_accuracy, initial_accuracy + 0.15)
      << "updates=" << stats.model_updates
      << " requests=" << stats.requests;

  // Privacy posture: the server never saw raw samples — only gradients,
  // label indices and device info flowed through the protocol. (Enforced
  // by construction; assert the bookkeeping is consistent.)
  EXPECT_EQ(stats.gradients + stats.rejected +
                (stats.requests - stats.gradients - stats.rejected),
            stats.requests);

  // The profiler kept workloads near the latency SLO for most tasks once
  // personalized: median task time within a factor 3 of the 3 s SLO.
  ASSERT_FALSE(stats.task_times_s.empty());
  std::vector<double> times = stats.task_times_s;
  std::sort(times.begin(), times.end());
  const double median = times[times.size() / 2];
  EXPECT_GT(median, 0.3);
  EXPECT_LT(median, 9.0);
}

TEST(IntegrationTest, AdaSgdSurvivesHeterogeneousSlowFleet) {
  // Mix a very slow device into a fast fleet: its stale gradients must not
  // destroy convergence (that is AdaSGD's whole job).
  data::SyntheticImageConfig data_cfg;
  data_cfg.n_classes = 3;
  data_cfg.n_train = 300;
  data_cfg.n_test = 90;
  const auto split = data::generate_synthetic_images(data_cfg);

  auto model = nn::zoo::small_cnn(1, 14, 14, 3);
  model->init(3);

  auto iprof = std::make_unique<profiler::IProf>(profiler::IProf::Config{});
  iprof->pretrain(profiler::collect_profile_dataset(
      device::training_fleet(), profiler::IProf::Config{}.slo, 7));

  core::ServerConfig server_cfg;
  server_cfg.learning_rate = 0.05f;
  core::FleetServer server(*model, std::move(iprof), server_cfg);

  stats::Rng rng(4);
  const auto partition = data::partition_iid(split.train.size(), 5, rng);
  const std::vector<std::string> devices{
      "Honor 10", "Galaxy S8", "HTC U11", "Xperia E3", "Xperia E3"};
  std::vector<core::FleetWorker> workers;
  for (std::size_t u = 0; u < partition.size(); ++u) {
    auto replica = nn::zoo::small_cnn(1, 14, 14, 3);
    replica->init(3);
    workers.emplace_back(static_cast<int>(u), std::move(replica), split.train,
                         partition[u], device::spec(devices[u]), 2000 + u);
  }

  core::FleetSimulation::Config sim_cfg;
  sim_cfg.duration_s = 2000.0;
  sim_cfg.think_time_mean_s = 6.0;
  core::FleetSimulation sim(server, workers, sim_cfg);
  const auto stats = sim.run();
  EXPECT_GT(stats.model_updates, 30u);
  EXPECT_GT(data::evaluate_accuracy(*model, split.test), 0.45);
}

}  // namespace
}  // namespace fleet
