#include "fleet/device/device_model.hpp"

#include <gtest/gtest.h>

#include "fleet/device/allocation.hpp"
#include "fleet/device/catalog.hpp"

namespace fleet::device {
namespace {

TEST(CatalogTest, KnownDevicesExist) {
  for (const char* name : {"Galaxy S7", "Honor 10", "Xperia E3",
                           "Raspberry Pi 4", "Galaxy S8"}) {
    EXPECT_NO_THROW(spec(name));
  }
  EXPECT_THROW(spec("Nokia 3310"), std::invalid_argument);
}

TEST(CatalogTest, FleetsReferToCatalogEntries) {
  for (const auto& fleet : {aws_fleet(), lab_fleet(), training_fleet()}) {
    for (const std::string& name : fleet) {
      EXPECT_NO_THROW(spec(name)) << name;
    }
  }
  EXPECT_EQ(aws_fleet().size(), 21u);   // Fig 12(a) lists 21 phones
  EXPECT_EQ(lab_fleet().size(), 5u);    // Fig 13 uses 5 lab phones
  EXPECT_EQ(training_fleet().size(), 15u);  // §3.3: 15 training devices
}

TEST(DeviceSimTest, TimeScalesLinearlyWithBatch) {
  // Fig 4(a): computation time is linear in mini-batch size.
  DeviceSpec s = spec("Galaxy S7");
  s.execution_noise = 0.0;  // isolate the deterministic component
  DeviceSim device(s, 1);
  const CoreAllocation alloc = fleet_allocation(s);
  const auto t1 = device.run_task(500, alloc);
  device.idle(10000.0);  // cool back down
  const auto t2 = device.run_task(1000, alloc);
  const double slope1 = (t1.time_s - s.task_overhead_s) / 500.0;
  const double slope2 = (t2.time_s - s.task_overhead_s) / 1000.0;
  EXPECT_NEAR(slope1, slope2, slope1 * 0.1);
}

TEST(DeviceSimTest, EnergyScalesWithTime) {
  DeviceSpec s = spec("Galaxy S7");
  s.execution_noise = 0.0;
  DeviceSim device(s, 1);
  const CoreAllocation alloc = fleet_allocation(s);
  const auto e1 = device.run_task(500, alloc);
  device.idle(10000.0);
  const auto e2 = device.run_task(1000, alloc);
  EXPECT_GT(e2.energy_pct, e1.energy_pct * 1.5);
  EXPECT_GT(e1.energy_pct, 0.0);
}

TEST(DeviceSimTest, DeviceHeterogeneityMatchesFig4) {
  // Honor 10 is fastest, Galaxy S7 mid, Xperia E3 an order of magnitude
  // slower — the Fig 4 relation.
  const auto slope = [](const char* name) {
    DeviceSpec s = spec(name);
    s.execution_noise = 0.0;
    DeviceSim device(s, 1);
    const auto exec = device.run_task(200, fleet_allocation(s));
    return (exec.time_s - s.task_overhead_s) / 200.0;
  };
  const double honor = slope("Honor 10");
  const double s7 = slope("Galaxy S7");
  const double e3 = slope("Xperia E3");
  EXPECT_LT(honor, s7);
  EXPECT_LT(s7, e3);
  EXPECT_GT(e3 / s7, 5.0);
}

TEST(DeviceSimTest, SustainedLoadThrottles) {
  // Fig 4: the linear relation changes with temperature. Repeated large
  // tasks without cool-down must slow the per-sample time down.
  DeviceSpec s = spec("Honor 10");
  s.execution_noise = 0.0;
  s.thermal.hot_noise = 0.0;
  DeviceSim device(s, 1);
  const CoreAllocation alloc = fleet_allocation(s);
  const double cold = device.run_task(2000, alloc).time_s;
  double hot = cold;
  for (int i = 0; i < 12; ++i) hot = device.run_task(2000, alloc).time_s;
  EXPECT_GT(hot, cold * 1.1);
  EXPECT_GT(device.temperature_c(), s.thermal.throttle_start_c);
}

TEST(DeviceSimTest, BigCoresOutperformLittleCores) {
  DeviceSpec s = spec("Galaxy S7");
  DeviceSim device(s, 1);
  EXPECT_GT(device.throughput({4, 0}), device.throughput({0, 4}));
  EXPECT_GT(device.throughput({4, 4}), device.throughput({4, 0}));
}

TEST(DeviceSimTest, BigCoresAreMoreEnergyEfficientPerSample) {
  // §2.4's rationale: for compute-bound work, big cores finish so much
  // faster that their energy per workload is lower.
  DeviceSpec s = spec("Galaxy S7");
  DeviceSim device(s, 1);
  const double big_energy_per_sample =
      device.power({4, 0}) / device.throughput({4, 0});
  const double little_energy_per_sample =
      device.power({0, 4}) / device.throughput({0, 4});
  EXPECT_LT(big_energy_per_sample, little_energy_per_sample);
}

TEST(DeviceSimTest, FeaturesExposeAndroidApiQuantities) {
  DeviceSim device(spec("Galaxy S7"), 1);
  const DeviceFeatures f = device.features();
  EXPECT_GT(f.total_memory_mb, 0.0);
  EXPECT_GT(f.available_memory_mb, 0.0);
  EXPECT_LT(f.available_memory_mb, f.total_memory_mb);
  EXPECT_GT(f.cpu_max_freq_sum_ghz, 0.0);
  EXPECT_GT(f.energy_per_cpu_s, 0.0);
  EXPECT_EQ(f.latency_features().size(), DeviceFeatures::latency_feature_count());
  EXPECT_EQ(f.energy_features().size(), DeviceFeatures::energy_feature_count());
}

TEST(DeviceSimTest, BatteryAccumulates) {
  DeviceSim device(spec("Galaxy S7"), 1);
  EXPECT_DOUBLE_EQ(device.battery_pct_used(), 0.0);
  device.run_task(1000, fleet_allocation(device.spec()));
  EXPECT_GT(device.battery_pct_used(), 0.0);
}

TEST(DeviceSimTest, AllowedAllocationsCoverTopology) {
  DeviceSim s7(spec("Galaxy S7"), 1);   // 4+4 -> 5*5-1 = 24 configs
  EXPECT_EQ(s7.allowed_allocations().size(), 24u);
  DeviceSim e3(spec("Xperia E3"), 1);   // 4+0 -> 4 configs
  EXPECT_EQ(e3.allowed_allocations().size(), 4u);
}

TEST(DeviceSimTest, RejectsBadUsage) {
  DeviceSim device(spec("Galaxy S7"), 1);
  EXPECT_THROW(device.run_task(0, {4, 0}), std::invalid_argument);
  EXPECT_THROW(device.throughput({0, 0}), std::invalid_argument);
  EXPECT_THROW(device.throughput({99, 0}), std::invalid_argument);
}

TEST(DeviceSimTest, RaspberryPiMatchesPaperCalibration) {
  // §3.1: 5.6 s at batch 1, 8.4 s at batch 100; 1.9 W idle, ~2.3 W active.
  DeviceSpec s = spec("Raspberry Pi 4");
  s.execution_noise = 0.0;
  DeviceSim pi(s, 1);
  const CoreAllocation all{4, 0};
  const double t1 = pi.run_task(1, all).time_s;
  pi.idle(10000.0);
  const double t100 = pi.run_task(100, all).time_s;
  EXPECT_NEAR(t1, 5.6, 0.3);
  EXPECT_NEAR(t100, 8.4, 0.5);
  EXPECT_NEAR(pi.power(all), 2.3, 0.2);
  EXPECT_NEAR(s.idle_power_w, 1.9, 1e-9);
}

TEST(AllocationTest, FleetPolicyUsesBigCoresOnly) {
  const CoreAllocation s7 = fleet_allocation(spec("Galaxy S7"));
  EXPECT_EQ(s7.n_big, 4);
  EXPECT_EQ(s7.n_little, 0);
  // Symmetric legacy device: all (big-slot) cores.
  const CoreAllocation e3 = fleet_allocation(spec("Xperia E3"));
  EXPECT_EQ(e3.n_big, 4);
  EXPECT_EQ(e3.n_little, 0);
}

}  // namespace
}  // namespace fleet::device
