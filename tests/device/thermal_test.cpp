#include "fleet/device/thermal.hpp"

#include <gtest/gtest.h>

namespace fleet::device {
namespace {

TEST(ThermalTest, StartsAtAmbient) {
  ThermalParams params;
  ThermalModel model(params);
  EXPECT_DOUBLE_EQ(model.temperature_c(), params.ambient_c);
  EXPECT_DOUBLE_EQ(model.throttle_factor(), 1.0);
}

TEST(ThermalTest, HeatsUnderLoadCoolsWhenIdle) {
  ThermalModel model(ThermalParams{});
  model.advance(30.0, 4.0);
  const double hot = model.temperature_c();
  EXPECT_GT(hot, 25.0);
  model.advance(120.0, 0.0);
  EXPECT_LT(model.temperature_c(), hot);
  // Long idle returns (close) to ambient.
  model.advance(10000.0, 0.0);
  EXPECT_NEAR(model.temperature_c(), 25.0, 0.1);
}

TEST(ThermalTest, EquilibriumMatchesAnalyticValue) {
  // At equilibrium: heat_per_watt * P = cooling_rate * (T - ambient).
  ThermalParams params;
  params.heat_per_watt = 1.0;
  params.cooling_rate = 0.05;
  ThermalModel model(params);
  model.advance(100000.0, 2.0);
  EXPECT_NEAR(model.temperature_c(), 25.0 + 2.0 / 0.05, 0.5);
}

TEST(ThermalTest, ThrottleKicksInAboveThreshold) {
  ThermalParams params;
  params.throttle_start_c = 30.0;
  params.throttle_slope = 0.1;
  ThermalModel model(params);
  EXPECT_DOUBLE_EQ(model.throttle_factor(), 1.0);
  model.advance(100000.0, 3.0);  // heat to equilibrium above threshold
  ASSERT_GT(model.temperature_c(), 30.0);
  EXPECT_LT(model.throttle_factor(), 1.0);
  EXPECT_GT(model.throttle_factor(), 0.0);
}

TEST(ThermalTest, HotNoiseGrowsWithTemperature) {
  ThermalParams params;
  params.throttle_start_c = 30.0;
  params.hot_noise = 0.01;
  ThermalModel model(params);
  EXPECT_DOUBLE_EQ(model.noise_stddev(), 0.0);
  model.advance(100000.0, 3.0);
  EXPECT_GT(model.noise_stddev(), 0.0);
}

TEST(ThermalTest, SubStepIntegrationIsStable) {
  // A very long step must not overshoot the equilibrium (the sub-stepping
  // guard in advance()).
  ThermalParams params;
  params.cooling_rate = 0.5;
  ThermalModel model(params);
  model.advance(10000.0, 2.0);
  const double equilibrium = 25.0 + params.heat_per_watt * 2.0 / 0.5;
  EXPECT_LE(model.temperature_c(), equilibrium + 0.5);
}

TEST(ThermalTest, RejectsBadInputs) {
  ThermalParams params;
  params.cooling_rate = 0.0;
  EXPECT_THROW(ThermalModel{params}, std::invalid_argument);
  ThermalModel ok{ThermalParams{}};
  EXPECT_THROW(ok.advance(-1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace fleet::device
